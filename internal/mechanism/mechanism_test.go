package mechanism

import (
	"math"
	"math/rand"
	"testing"

	"tsens/internal/core"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// chainDB builds a 3-way path query instance with a known skew: customer 0
// owns many orders.
func chainDB(nCust, nOrders, fanout int) (*query.Query, *relation.Database) {
	var cust, orders, items []relation.Tuple
	for c := 0; c < nCust; c++ {
		cust = append(cust, relation.Tuple{int64(c)})
	}
	oid := int64(0)
	for c := 0; c < nCust; c++ {
		k := 1
		if c == 0 {
			k = fanout
		}
		for j := 0; j < k && int(oid) < nOrders; j++ {
			orders = append(orders, relation.Tuple{int64(c), oid})
			items = append(items, relation.Tuple{oid, int64(j)})
			items = append(items, relation.Tuple{oid, int64(j + 1000)})
			oid++
		}
	}
	db := relation.MustNewDatabase(
		relation.MustNew("C", []string{"ck"}, cust),
		relation.MustNew("O", []string{"ck", "ok"}, orders),
		relation.MustNew("L", []string{"ok", "lk"}, items),
	)
	q := query.MustNew("q", []query.Atom{
		{Relation: "C", Vars: []string{"CK"}},
		{Relation: "O", Vars: []string{"CK", "OK"}},
		{Relation: "L", Vars: []string{"OK", "LK"}},
	}, nil)
	return q, db
}

func TestTSensDPHighEpsilonIsAccurate(t *testing.T) {
	q, db := chainDB(20, 100, 30)
	trueCount, err := core.Evaluate(q, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := TSensDP(q, db, core.Options{}, "C", TSensDPConfig{Epsilon: 1e6, Bound: 100}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if run.True != trueCount {
		t.Fatalf("True=%d, engine says %d", run.True, trueCount)
	}
	// With effectively infinite budget the SVT finds a threshold at (or
	// just above) the max tuple sensitivity, so bias ≈ 0 and error ≈ 0.
	if run.Bias > 0.01 {
		t.Fatalf("bias=%g at ε=1e6", run.Bias)
	}
	if run.Error > 0.01 {
		t.Fatalf("error=%g at ε=1e6", run.Error)
	}
	// The learned global sensitivity should be near the true local
	// sensitivity of the private relation, far below the bound 100.
	ls, err := core.LocalSensitivity(q, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxC := ls.PerRelation["C"].Sensitivity
	if run.GlobalSens < maxC || run.GlobalSens > maxC*2+2 {
		t.Fatalf("learned τ=%d, true max tuple sensitivity=%d", run.GlobalSens, maxC)
	}
}

func TestTSensDPValidation(t *testing.T) {
	q, db := chainDB(5, 10, 2)
	rng := rand.New(rand.NewSource(2))
	if _, err := TSensDP(q, db, core.Options{}, "C", TSensDPConfig{Epsilon: 0, Bound: 10}, rng); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
	if _, err := TSensDP(q, db, core.Options{}, "C", TSensDPConfig{Epsilon: 1, Bound: 0}, rng); err == nil {
		t.Fatal("bound=0 accepted")
	}
	if _, err := TSensDP(q, db, core.Options{}, "C", TSensDPConfig{Epsilon: 1, EpsilonSens: 2, Bound: 10}, rng); err == nil {
		t.Fatal("ε_sens ≥ ε accepted")
	}
	if _, err := TSensDP(q, db, core.Options{}, "Nope", TSensDPConfig{Epsilon: 1, Bound: 10}, rng); err == nil {
		t.Fatal("unknown private relation accepted")
	}
}

func TestTSensDPTrueCountMatchesEngine(t *testing.T) {
	// Σ_t δ(t) over the private relation must equal |Q(D)| for every choice
	// of private relation.
	q, db := chainDB(8, 30, 5)
	want, err := core.Evaluate(q, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range []string{"C", "O", "L"} {
		run, err := TSensDP(q, db, core.Options{}, pr, TSensDPConfig{Epsilon: 1, Bound: 50}, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		if run.True != want {
			t.Fatalf("private=%s: True=%d, want %d", pr, run.True, want)
		}
	}
}

func TestTSensDPLowBoundForcesBias(t *testing.T) {
	q, db := chainDB(20, 100, 30)
	// ℓ=1 truncates every tuple with sensitivity > 1: heavy bias, as in the
	// parameter study of Section 7.3.
	run, err := TSensDP(q, db, core.Options{}, "C", TSensDPConfig{Epsilon: 1e6, Bound: 1}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if run.Bias == 0 {
		t.Fatal("ℓ=1 should truncate the heavy customer")
	}
	if run.GlobalSens != 1 {
		t.Fatalf("GS=%d, want 1", run.GlobalSens)
	}
}

func TestPrivSQLNoPolicyZeroBias(t *testing.T) {
	q, db := chainDB(10, 40, 8)
	run, err := PrivSQL(q, db, core.Options{}, "C", nil, nil, PrivSQLConfig{Epsilon: 1e6}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if run.Bias != 0 {
		t.Fatalf("no policy must give zero bias, got %g", run.Bias)
	}
	if run.GlobalSens < 1 {
		t.Fatalf("GS=%d", run.GlobalSens)
	}
}

func TestPrivSQLTruncatesHeavyKeys(t *testing.T) {
	q, db := chainDB(20, 100, 50)
	policy := []Truncation{{Relation: "O", KeyVars: []string{"CK"}}}
	run, err := PrivSQL(q, db, core.Options{}, "C", policy, nil, PrivSQLConfig{Epsilon: 1e6, MaxCap: 8}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	// Customer 0 has 50 orders; with MaxCap 8 its orders must be dropped.
	if run.Truncated >= run.True {
		t.Fatalf("Truncated=%d, True=%d: heavy key not truncated", run.Truncated, run.True)
	}
	if run.Bias == 0 {
		t.Fatal("expected non-zero bias from truncation")
	}
}

func TestPrivSQLGlobalSensDominatesTSensDP(t *testing.T) {
	// The paper's key comparison: PrivSQL's static GS is much larger than
	// the τ TSensDP learns when the per-relation max frequencies occur at
	// different keys — the static product 30·50 = 1500 is loose while no
	// single customer touches more than 50 outputs.
	var cust, orders, items []relation.Tuple
	cust = append(cust, relation.Tuple{0}, relation.Tuple{1})
	for j := int64(0); j < 30; j++ { // customer 0: 30 orders, 1 item each
		orders = append(orders, relation.Tuple{0, j})
		items = append(items, relation.Tuple{j, 0})
	}
	orders = append(orders, relation.Tuple{1, 100}) // customer 1: 1 order, 50 items
	for j := int64(0); j < 50; j++ {
		items = append(items, relation.Tuple{100, j})
	}
	db := relation.MustNewDatabase(
		relation.MustNew("C", []string{"ck"}, cust),
		relation.MustNew("O", []string{"ck", "ok"}, orders),
		relation.MustNew("L", []string{"ok", "lk"}, items),
	)
	q := query.MustNew("q", []query.Atom{
		{Relation: "C", Vars: []string{"CK"}},
		{Relation: "O", Vars: []string{"CK", "OK"}},
		{Relation: "L", Vars: []string{"OK", "LK"}},
	}, nil)
	rng := rand.New(rand.NewSource(7))
	ts, err := TSensDP(q, db, core.Options{}, "C", TSensDPConfig{Epsilon: 1e6, Bound: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := PrivSQL(q, db, core.Options{}, "C", nil, nil, PrivSQLConfig{Epsilon: 1e6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ps.GlobalSens != 1500 {
		t.Fatalf("PrivSQL static GS=%d, want 30·50=1500", ps.GlobalSens)
	}
	if ts.GlobalSens >= ps.GlobalSens/10 {
		t.Fatalf("TSensDP τ=%d should be far below PrivSQL GS=%d", ts.GlobalSens, ps.GlobalSens)
	}
}

func TestPrivSQLValidation(t *testing.T) {
	q, db := chainDB(5, 10, 2)
	rng := rand.New(rand.NewSource(8))
	if _, err := PrivSQL(q, db, core.Options{}, "C", nil, nil, PrivSQLConfig{Epsilon: 0}, rng); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
	bad := []Truncation{{Relation: "Nope", KeyVars: []string{"CK"}}}
	if _, err := PrivSQL(q, db, core.Options{}, "C", bad, nil, PrivSQLConfig{Epsilon: 1}, rng); err == nil {
		t.Fatal("policy on unknown relation accepted")
	}
	bad2 := []Truncation{{Relation: "O", KeyVars: []string{"ZZ"}}}
	if _, err := PrivSQL(q, db, core.Options{}, "C", bad2, nil, PrivSQLConfig{Epsilon: 1}, rng); err == nil {
		t.Fatal("policy on unknown key accepted")
	}
}

func TestRunFinalizeClampsNegative(t *testing.T) {
	r := &Run{True: 100, Truncated: 100, Noisy: -5}
	r.finalize()
	if r.Noisy != 0 {
		t.Fatalf("Noisy=%g, want clamped 0", r.Noisy)
	}
	if math.Abs(r.Error-1.0) > 1e-9 {
		t.Fatalf("Error=%g, want 1", r.Error)
	}
	zero := &Run{True: 0, Truncated: 0, Noisy: 0}
	zero.finalize() // must not divide by zero
	if zero.Error != 0 || zero.Bias != 0 {
		t.Fatalf("zero-count run: bias=%g error=%g", zero.Bias, zero.Error)
	}
}
