package mechanism

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"tsens/internal/core"
	"tsens/internal/relation"
)

func TestLedgerAccounting(t *testing.T) {
	l, err := NewLedger(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overdraw not refused: %v", err)
	}
	if got := l.Spent(); got != 1.0 {
		t.Fatalf("Spent() = %g after refused overdraw, want 1.0", got)
	}
	if rem, ok := l.Remaining(); !ok || rem != 0 {
		t.Fatalf("Remaining() = %g, %v", rem, ok)
	}
	if l.Spends() != 2 {
		t.Fatalf("Spends() = %d, want 2", l.Spends())
	}
	if _, err := NewLedger(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := l.Spend(0); err == nil {
		t.Fatal("zero spend accepted")
	}
}

func TestLedgerUnlimited(t *testing.T) {
	l, err := NewLedger(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Spend(10); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := l.Remaining(); ok {
		t.Fatal("unlimited ledger reported a finite remainder")
	}
	if l.Spent() != 1000 {
		t.Fatalf("Spent() = %g", l.Spent())
	}
}

// TestLedgerConcurrentSpend hammers one ledger from many goroutines: the
// admitted debits must never jointly overdraw the budget.
func TestLedgerConcurrentSpend(t *testing.T) {
	l, err := NewLedger(5.0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if l.Spend(0.1) == nil {
					mu.Lock()
					admitted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if admitted != 50 {
		t.Fatalf("admitted %d spends of 0.1 against budget 5.0, want 50", admitted)
	}
}

// TestLedgerPropertyRandomSpends drives many random spend sequences against
// random budgets and asserts the ledger invariants after every step: the
// budget never goes negative (Remaining ≥ 0 and Spent ≤ Budget, up to the
// overdraw tolerance), refused spends leave the ledger untouched, and
// Spent always equals the sum of admitted debits exactly as reported.
func TestLedgerPropertyRandomSpends(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		budget := float64(rng.Intn(20)) / 2 // 0 (unlimited) … 9.5
		l, err := NewLedger(budget)
		if err != nil {
			t.Fatal(err)
		}
		var model float64
		admits := 0
		for step := 0; step < 40; step++ {
			eps := float64(1+rng.Intn(40)) / 10 // 0.1 … 4.0
			before := l.Spent()
			if err := l.Spend(eps); err != nil {
				if !errors.Is(err, ErrBudgetExhausted) {
					t.Fatalf("trial %d: unexpected error %v", trial, err)
				}
				if budget == 0 {
					t.Fatalf("trial %d: unlimited ledger refused a spend", trial)
				}
				if after := l.Spent(); after != before {
					t.Fatalf("trial %d: refused spend moved the ledger %g -> %g", trial, before, after)
				}
				continue
			}
			model += eps
			admits++
			if budget > 0 && l.Spent() > budget+1e-9 {
				t.Fatalf("trial %d: budget overdrawn: spent %g of %g", trial, l.Spent(), budget)
			}
			if rem, ok := l.Remaining(); ok && rem < -1e-9 {
				t.Fatalf("trial %d: negative remainder %g", trial, rem)
			}
		}
		if got := l.Spent(); got != model {
			t.Fatalf("trial %d: Spent %g, model %g", trial, got, model)
		}
		if l.Spends() != admits {
			t.Fatalf("trial %d: Spends %d, model %d", trial, l.Spends(), admits)
		}
	}
}

// TestLedgerConcurrentMixedSpends races goroutines spending *different*
// amounts: whatever interleaving wins, the admitted total must respect the
// budget and equal the final Spent().
func TestLedgerConcurrentMixedSpends(t *testing.T) {
	l, err := NewLedger(10)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total float64
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				eps := float64(1+rng.Intn(30)) / 10
				if l.Spend(eps) == nil {
					mu.Lock()
					total += eps
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if total > 10+1e-9 {
		t.Fatalf("concurrent spends overdrew the budget: %g of 10", total)
	}
	// Ledger and model sum the same admitted debits in possibly different
	// orders; float addition is non-associative, so compare with tolerance.
	if got := l.Spent(); math.Abs(got-total) > 1e-9 {
		t.Fatalf("Spent %g, admitted sum %g", got, total)
	}
}

// TestLedgerReplayChargesOnce pairs a ledger with the streaming replay
// loop the serving layer uses: answers replayed while the count has not
// drifted must charge the ledger exactly once per fresh release, no matter
// how many times the answer is read.
func TestLedgerReplayChargesOnce(t *testing.T) {
	l, err := NewLedger(2) // room for exactly two fresh releases
	if err != nil {
		t.Fatal(err)
	}
	// Count agrees with Σ sens, as it does for a real session (every output
	// tuple passes one private row).
	src := &fakeSource{count: 40, sens: []int64{10, 10, 10, 10}}
	st, err := NewStreamingTSensDP(src, "R", StreamingTSensDPConfig{
		TSensDPConfig: TSensDPConfig{Epsilon: 1, Bound: 10},
		DriftFraction: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	answer := func() bool {
		t.Helper()
		_, fresh, err := st.Answer(rng)
		if err != nil {
			t.Fatal(err)
		}
		if fresh {
			if err := l.Spend(1); err != nil {
				t.Fatal(err)
			}
		}
		return fresh
	}
	if !answer() {
		t.Fatal("first answer must be fresh")
	}
	for i := 0; i < 25; i++ {
		src.count = 40 + int64(i%4) // oscillates inside the 10% drift gate
		if answer() {
			t.Fatalf("replay %d charged a fresh release without drift", i)
		}
	}
	if l.Spent() != 1 || st.Releases() != 1 {
		t.Fatalf("spent %g over %d releases after replays, want exactly one", l.Spent(), st.Releases())
	}
	src.count = 400 // past the gate: the next answer is fresh and charged
	if !answer() {
		t.Fatal("drifted answer must be fresh")
	}
	if l.Spent() != 2 || st.Releases() != 2 {
		t.Fatalf("spent %g over %d releases after drift, want exactly two", l.Spent(), st.Releases())
	}
}

// fakeSource is a SensitivitySource with a settable count: the replay gate
// only reads Count until it drifts, so the sensitivity vector can stay
// fixed.
type fakeSource struct {
	count int64
	sens  []int64
}

func (f *fakeSource) Count() int64 { return f.count }
func (f *fakeSource) Rows(string) []relation.Tuple {
	rows := make([]relation.Tuple, len(f.sens))
	for i := range rows {
		rows[i] = relation.Tuple{int64(i)}
	}
	return rows
}
func (f *fakeSource) SensitivityFn(string) (core.SensitivityFn, error) {
	return func(t relation.Tuple) int64 { return f.sens[t[0]] }, nil
}

// TestReleaseMatchesTSensDP checks the exported Release against the full
// TSensDP pipeline: identical sensitivity vectors and rng seeds produce the
// identical run.
func TestReleaseMatchesTSensDP(t *testing.T) {
	sens := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	cfg := TSensDPConfig{Epsilon: 1, Bound: 10}
	a, err := Release(append([]int64(nil), sens...), cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := release(append([]int64(nil), sens...), cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("Release diverged from release: %+v vs %+v", a, b)
	}
	if a.True != 44 {
		t.Fatalf("True = %d, want Σ sens = 44", a.True)
	}
}

// TestLedgerExportRestore: the durability round-trip a serving layer relies
// on — restored ledgers resume with exact totals and keep enforcing the
// budget, and inconsistent persisted state is refused.
func TestLedgerExportRestore(t *testing.T) {
	l, err := NewLedger(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Spend(1); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Export()
	if st.Budget != 3 || st.Spent != 2 || st.Spends != 2 {
		t.Fatalf("export: %+v", st)
	}
	r, err := RestoreLedger(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Spent() != 2 || r.Spends() != 2 || r.Budget() != 3 {
		t.Fatalf("restored: spent %g over %d of %g", r.Spent(), r.Spends(), r.Budget())
	}
	if err := r.Spend(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Spend(1); err == nil {
		t.Fatal("restored ledger allowed overdraw")
	}
	for _, bad := range []LedgerState{
		{Budget: -1},
		{Budget: 1, Spent: 2},
		{Spent: -1},
		{Spends: -1},
	} {
		if _, err := RestoreLedger(bad); err == nil {
			t.Fatalf("inconsistent state %+v accepted", bad)
		}
	}
	// Unlimited ledgers restore too (budget 0 records without enforcing).
	u, err := RestoreLedger(LedgerState{Spent: 7.5, Spends: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Spend(100); err != nil {
		t.Fatal(err)
	}
	if u.Spent() != 107.5 {
		t.Fatalf("unlimited restored spent %g", u.Spent())
	}
}
