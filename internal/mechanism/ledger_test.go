package mechanism

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestLedgerAccounting(t *testing.T) {
	l, err := NewLedger(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overdraw not refused: %v", err)
	}
	if got := l.Spent(); got != 1.0 {
		t.Fatalf("Spent() = %g after refused overdraw, want 1.0", got)
	}
	if rem, ok := l.Remaining(); !ok || rem != 0 {
		t.Fatalf("Remaining() = %g, %v", rem, ok)
	}
	if l.Spends() != 2 {
		t.Fatalf("Spends() = %d, want 2", l.Spends())
	}
	if _, err := NewLedger(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := l.Spend(0); err == nil {
		t.Fatal("zero spend accepted")
	}
}

func TestLedgerUnlimited(t *testing.T) {
	l, err := NewLedger(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Spend(10); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := l.Remaining(); ok {
		t.Fatal("unlimited ledger reported a finite remainder")
	}
	if l.Spent() != 1000 {
		t.Fatalf("Spent() = %g", l.Spent())
	}
}

// TestLedgerConcurrentSpend hammers one ledger from many goroutines: the
// admitted debits must never jointly overdraw the budget.
func TestLedgerConcurrentSpend(t *testing.T) {
	l, err := NewLedger(5.0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if l.Spend(0.1) == nil {
					mu.Lock()
					admitted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if admitted != 50 {
		t.Fatalf("admitted %d spends of 0.1 against budget 5.0, want 50", admitted)
	}
}

// TestReleaseMatchesTSensDP checks the exported Release against the full
// TSensDP pipeline: identical sensitivity vectors and rng seeds produce the
// identical run.
func TestReleaseMatchesTSensDP(t *testing.T) {
	sens := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	cfg := TSensDPConfig{Epsilon: 1, Bound: 10}
	a, err := Release(append([]int64(nil), sens...), cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := release(append([]int64(nil), sens...), cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("Release diverged from release: %+v vs %+v", a, b)
	}
	if a.True != 44 {
		t.Fatalf("True = %d, want Σ sens = 44", a.True)
	}
}
