// Package mechanism implements the differentially private query-answering
// mechanisms of Section 6: TSensDP, which truncates the primary private
// relation by tuple sensitivity with an SVT-learned threshold, and a
// PrivSQL-style baseline that truncates by join-key frequency and bounds
// global sensitivity statically.
package mechanism

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tsens/internal/core"
	"tsens/internal/dp"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// Run records one mechanism execution, the quantities Table 2 reports.
type Run struct {
	True       int64   // |Q(D)|
	Truncated  int64   // |Q(T(D))| — the biased but low-sensitivity answer
	Noisy      float64 // released value (clamped at 0, as in Section 7.3)
	GlobalSens int64   // global sensitivity of the released query
	Bias       float64 // |Truncated − True| / True
	Error      float64 // |Noisy − True| / True
}

func (r *Run) finalize() {
	if r.Noisy < 0 {
		r.Noisy = 0
	}
	denom := float64(r.True)
	if denom == 0 {
		denom = 1
	}
	r.Bias = math.Abs(float64(r.Truncated-r.True)) / denom
	r.Error = math.Abs(r.Noisy-float64(r.True)) / denom
}

// TSensDPConfig parameterizes the truncation mechanism of Section 6.2.
type TSensDPConfig struct {
	// Epsilon is the total privacy budget ε.
	Epsilon float64
	// EpsilonSens is the slice of ε spent learning the truncation
	// threshold (Q̂ release plus SVT). Zero defaults to ε/2, the split used
	// in Section 7.3.
	EpsilonSens float64
	// Bound is ℓ, the assumed upper bound on tuple sensitivity. The
	// mechanism is ε-DP for any value; accuracy depends on it (the
	// parameter study of Section 7.3).
	Bound int64
}

func (cfg TSensDPConfig) validate() error {
	if cfg.Epsilon <= 0 {
		return fmt.Errorf("mechanism: epsilon must be positive")
	}
	if cfg.Bound < 1 {
		return fmt.Errorf("mechanism: sensitivity bound ℓ must be at least 1")
	}
	epsSens := cfg.EpsilonSens
	if epsSens == 0 {
		epsSens = cfg.Epsilon / 2
	}
	if epsSens >= cfg.Epsilon {
		return fmt.Errorf("mechanism: ε_sens=%g must be below ε=%g", epsSens, cfg.Epsilon)
	}
	return nil
}

// TSensDP answers the counting query with ε-differential privacy w.r.t.
// adding or removing one tuple of the primary private relation:
//
//  1. compute δ(t) for every tuple t of the private relation via the
//     multiplicity table (core.TupleSensitivities);
//  2. release Q̂ ≈ Q(T(D,ℓ)) with the Laplace mechanism at sensitivity ℓ;
//  3. run SVT over q_i = (Q(T(D,i)) − Q̂)/i, i = 1..ℓ−1 (each has global
//     sensitivity 1) and take the first i above 0 as the threshold τ;
//  4. release Q(T(D,τ)) + Lap(τ/(ε−ε_sens))  (Theorem 6.1).
func TSensDP(q *query.Query, db *relation.Database, opts core.Options, private string, cfg TSensDPConfig, rng *rand.Rand) (*Run, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	opts.TopK = 0 // tuple sensitivities must be exact
	fn, err := core.TupleSensitivities(q, db, private, opts)
	if err != nil {
		return nil, err
	}
	pr := db.Relation(private)
	if pr == nil {
		return nil, fmt.Errorf("mechanism: no relation %s", private)
	}
	// Every output tuple passes through exactly one private row (no self
	// joins), so Q(D) = Σ_t δ(t) and Q(T(D,i)) = Σ_{δ(t)≤i} δ(t). The
	// evaluator is read-only after construction, so the scan fans out over
	// the worker pool (a shared Options.Pool is reused instead of spawning
	// goroutines per release).
	sens := make([]int64, len(pr.Rows))
	if err := opts.Do(len(pr.Rows), func(i int) error {
		sens[i] = fn(pr.Rows[i])
		return nil
	}); err != nil {
		return nil, err
	}
	return release(sens, cfg, rng)
}

// release runs steps 2–4 of Section 6.2 over the per-tuple sensitivities of
// the private relation (taking ownership of sens, which it sorts). It is
// shared by the one-shot TSensDP and the streaming variant.
func release(sens []int64, cfg TSensDPConfig, rng *rand.Rand) (*Run, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	epsSens := cfg.EpsilonSens
	if epsSens == 0 {
		epsSens = cfg.Epsilon / 2
	}
	sort.Slice(sens, func(i, j int) bool { return sens[i] < sens[j] })
	prefix := make([]int64, len(sens)+1)
	for i, s := range sens {
		prefix[i+1] = relation.AddSat(prefix[i], s)
	}
	truncatedCount := func(i int64) int64 {
		// Sum of sensitivities ≤ i.
		k := sort.Search(len(sens), func(j int) bool { return sens[j] > i })
		return prefix[k]
	}
	run := &Run{True: truncatedCount(math.MaxInt64)}

	// Step 2: noisy reference answer at the loose bound ℓ.
	qHat, err := dp.LaplaceMechanism(rng, float64(truncatedCount(cfg.Bound)), float64(cfg.Bound), epsSens/2)
	if err != nil {
		return nil, err
	}
	// Step 3: SVT over the normalized gap queries.
	queries := make([]float64, 0, cfg.Bound-1)
	for i := int64(1); i < cfg.Bound; i++ {
		queries = append(queries, (float64(truncatedCount(i))-qHat)/float64(i))
	}
	idx, err := dp.AboveThreshold(rng, epsSens/2, 0, queries)
	if err != nil {
		return nil, err
	}
	tau := cfg.Bound
	if idx >= 0 {
		tau = int64(idx) + 1
	}
	// Step 4: release at sensitivity τ.
	run.GlobalSens = tau
	run.Truncated = truncatedCount(tau)
	run.Noisy, err = dp.LaplaceMechanism(rng, float64(run.Truncated), float64(tau), cfg.Epsilon-epsSens)
	if err != nil {
		return nil, err
	}
	run.finalize()
	return run, nil
}
