package mechanism

import (
	"math/rand"
	"testing"

	"tsens/internal/core"
	"tsens/internal/incremental"
	"tsens/internal/query"
	"tsens/internal/relation"
)

func streamingFixture(t *testing.T) (*query.Query, *relation.Database) {
	t.Helper()
	q := query.MustNew("qs", []query.Atom{
		{Relation: "U", Vars: []string{"A", "B"}},
		{Relation: "V", Vars: []string{"B", "C"}},
	}, nil)
	rng := rand.New(rand.NewSource(4))
	mk := func(name string, vars []string, n int) *relation.Relation {
		rows := make([]relation.Tuple, n)
		for i := range rows {
			row := make(relation.Tuple, len(vars))
			for j := range row {
				row[j] = int64(rng.Intn(4))
			}
			rows[i] = row
		}
		return relation.MustNew(name, vars, rows)
	}
	db := relation.MustNewDatabase(mk("U", []string{"A", "B"}, 30), mk("V", []string{"B", "C"}, 30))
	return q, db
}

// TestStreamingMatchesOneShot: with the same rng stream, a fresh streaming
// release equals the one-shot TSensDP on the same database.
func TestStreamingMatchesOneShot(t *testing.T) {
	q, db := streamingFixture(t)
	cfg := TSensDPConfig{Epsilon: 1, Bound: 20}
	sess, err := incremental.Open(q, db, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamingTSensDP(sess, "U", StreamingTSensDPConfig{TSensDPConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	got, fresh, err := st.Answer(rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if !fresh || st.Releases() != 1 {
		t.Fatalf("first answer should be a fresh release (fresh=%v releases=%d)", fresh, st.Releases())
	}
	want, err := TSensDP(q, db, core.Options{}, "U", cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if got.True != want.True || got.Truncated != want.Truncated || got.Noisy != want.Noisy || got.GlobalSens != want.GlobalSens {
		t.Fatalf("streaming %+v != one-shot %+v", got, want)
	}
}

// TestStreamingDriftGating: small drifts replay the cached release, large
// drifts re-noise.
func TestStreamingDriftGating(t *testing.T) {
	q, db := streamingFixture(t)
	sess, err := incremental.Open(q, db, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamingTSensDP(sess, "U", StreamingTSensDPConfig{
		TSensDPConfig: TSensDPConfig{Epsilon: 1, Bound: 20},
		DriftFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if _, fresh, err := st.Answer(rng); err != nil || !fresh {
		t.Fatalf("first answer: fresh=%v err=%v", fresh, err)
	}
	// No updates: must replay.
	run2, fresh, err := st.Answer(rng)
	if err != nil || fresh {
		t.Fatalf("unchanged db re-released: fresh=%v err=%v", fresh, err)
	}
	if run2.True != sess.Count() {
		t.Fatalf("replayed run reports stale count %d vs %d", run2.True, sess.Count())
	}
	// Blow the count up far past the drift fraction.
	for i := 0; i < 40; i++ {
		if err := sess.Insert("U", relation.Tuple{int64(i % 4), int64(i % 4)}); err != nil {
			t.Fatal(err)
		}
		if err := sess.Insert("V", relation.Tuple{int64(i % 4), int64(i % 4)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, fresh, err = st.Answer(rng); err != nil || !fresh {
		t.Fatalf("drifted db not re-released: fresh=%v err=%v", fresh, err)
	}
	if st.Releases() != 2 {
		t.Fatalf("Releases() = %d, want 2", st.Releases())
	}
}
