package mechanism

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrBudgetExhausted reports a release attempt past the ledger's budget.
var ErrBudgetExhausted = errors.New("mechanism: privacy budget exhausted")

// Ledger accounts cumulative ε spending against a fixed privacy budget.
// Under sequential composition, releasing answers with budgets ε1, ε2, …
// over the same private data is (Σ εi)-DP, so a serving layer granting
// repeated releases must refuse once the sum would cross the total. Spend is
// atomic: concurrent releases cannot jointly overdraw. A zero budget means
// unlimited (the ledger only records spending).
type Ledger struct {
	mu     sync.Mutex
	budget float64
	spent  float64
	spends int
}

// NewLedger returns a ledger with the given total ε budget (0 = unlimited).
func NewLedger(budget float64) (*Ledger, error) {
	if budget < 0 {
		return nil, fmt.Errorf("mechanism: budget must be non-negative, got %g", budget)
	}
	return &Ledger{budget: budget}, nil
}

// LedgerState is the exportable accounting of a Ledger, the part a durable
// serving layer must persist: losing it across a restart would reset every
// query's spent ε to zero and let an analyst re-spend the same budget,
// voiding the sequential-composition guarantee the ledger enforces.
type LedgerState struct {
	Budget float64
	Spent  float64
	Spends int
}

// Export snapshots the ledger's accounting for persistence.
func (l *Ledger) Export() LedgerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerState{Budget: l.budget, Spent: l.spent, Spends: l.spends}
}

// RestoreLedger rebuilds a ledger from persisted accounting (the inverse of
// Export). The state must be internally consistent: non-negative spending
// that does not exceed a positive budget beyond float tolerance.
func RestoreLedger(st LedgerState) (*Ledger, error) {
	if st.Budget < 0 {
		return nil, fmt.Errorf("mechanism: budget must be non-negative, got %g", st.Budget)
	}
	if st.Spent < 0 || st.Spends < 0 {
		return nil, fmt.Errorf("mechanism: negative ledger state (spent %g over %d spends)", st.Spent, st.Spends)
	}
	if st.Budget > 0 && st.Spent > st.Budget+1e-12 {
		return nil, fmt.Errorf("mechanism: restored spending %g exceeds budget %g", st.Spent, st.Budget)
	}
	return &Ledger{budget: st.Budget, spent: st.Spent, spends: st.Spends}, nil
}

// Spend debits eps from the budget, or returns ErrBudgetExhausted (leaving
// the ledger untouched) when the debit would overdraw it.
func (l *Ledger) Spend(eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("mechanism: spend must be positive, got %g", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.budget > 0 && l.spent+eps > l.budget+1e-12 {
		return fmt.Errorf("%w: spent %g of %g, refused %g", ErrBudgetExhausted, l.spent, l.budget, eps)
	}
	l.spent += eps
	l.spends++
	return nil
}

// Budget returns the total ε budget (0 = unlimited).
func (l *Ledger) Budget() float64 { return l.budget }

// Spent returns the cumulative ε debited so far.
func (l *Ledger) Spent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spent
}

// Remaining returns the budget left, or +Inf-like behavior via ok=false for
// unlimited ledgers.
func (l *Ledger) Remaining() (eps float64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.budget == 0 {
		return 0, false
	}
	return l.budget - l.spent, true
}

// Spends returns how many successful debits the ledger has recorded.
func (l *Ledger) Spends() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spends
}

// Validate checks a release configuration without running it.
func (cfg TSensDPConfig) Validate() error { return cfg.validate() }

// Rebase re-targets a cached run at a new true count, recomputing the
// bias/error metrics — the replay path of streaming and served releases
// (the noisy value itself is unchanged, so nothing new is spent).
func Rebase(r *Run, trueCount int64) {
	r.True = trueCount
	r.finalize()
}

// Release runs the TSensDP release (steps 2–4 of Section 6.2) over a
// precomputed per-tuple sensitivity vector of the private relation, spending
// cfg.Epsilon. It takes ownership of sens and sorts it — pass a copy when
// the vector is shared (the serving layer releases from immutable epoch
// snapshots this way). Budget accounting is the caller's job (Ledger).
func Release(sens []int64, cfg TSensDPConfig, rng *rand.Rand) (*Run, error) {
	return release(sens, cfg, rng)
}
