package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolDoMatchesDo(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 7, 100} {
		var sum atomic.Int64
		if err := p.Do(0, n, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := int64(n*(n-1)) / 2
		if sum.Load() != want {
			t.Fatalf("n=%d: sum %d, want %d", n, sum.Load(), want)
		}
	}
}

func TestPoolDoError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := errors.New("boom")
	err := p.Do(0, 50, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolDAGOrdering(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Chain with a diamond: 0 -> {1,2} -> 3.
	deps := [][]int{nil, {0}, {0}, {1, 2}}
	var mu sync.Mutex
	var order []int
	if err := p.DAG(0, deps, func(i int) error {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if len(order) != 4 || pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Fatalf("order = %v", order)
	}
}

// TestPoolReuseAndConcurrency drives many concurrent Do/DAG calls through
// one pool; the race detector guards the shared state.
func TestPoolReuseAndConcurrency(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				var sum atomic.Int64
				if err := p.Do(0, 32, func(i int) error {
					sum.Add(1)
					return nil
				}); err != nil || sum.Load() != 32 {
					t.Errorf("Do: err=%v sum=%d", err, sum.Load())
					return
				}
				deps := [][]int{nil, {0}, {1}}
				var n atomic.Int64
				if err := p.DAG(0, deps, func(i int) error {
					n.Add(1)
					return nil
				}); err != nil || n.Load() != 3 {
					t.Errorf("DAG: err=%v n=%d", err, n.Load())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var sum atomic.Int64
	if err := p.Do(0, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum after close = %d", sum.Load())
	}
}
