// Package par provides the small bounded-parallelism primitives the
// sensitivity engine runs on: an indexed worker pool (Do), a
// dependency-ordered scheduler (DAG) for the botjoin/topjoin passes over
// join forests, and a reusable fixed-size Pool that amortizes goroutine
// spawns across solver invocations. A parallelism of 0 means
// runtime.GOMAXPROCS(0); 1 forces fully sequential, deterministic
// execution. All scheduling is work-conserving and allocates O(n)
// regardless of the worker count.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// N resolves a parallelism setting: values below 1 mean GOMAXPROCS.
func N(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// spawner starts a task on some other goroutine, reporting false when it
// cannot (the caller then runs with fewer remote workers; one worker always
// runs inline, so progress never depends on a spawn succeeding).
type spawner func(task func()) bool

func goSpawner(task func()) bool {
	go task()
	return true
}

// Do runs fn(i) for every i in [0, n) on at most par workers (see N) and
// returns the first error. On error, remaining indexes not yet started are
// skipped; indexes already running complete.
func Do(par, n int, fn func(int) error) error {
	return doOn(N(par), goSpawner, n, fn)
}

// doOn is the shared Do core: one puller runs inline on the calling
// goroutine, workers-1 more are started through spawn.
func doOn(workers int, spawn spawner, n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	puller := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				failed.Store(true)
				return
			}
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		if !spawn(func() { defer wg.Done(); puller() }) {
			wg.Done()
			break
		}
	}
	puller()
	wg.Wait()
	return firstErr
}

// DAG runs fn(i) for every node i of a dependency graph, starting a node
// only after all of deps[i] have completed, with at most par concurrent
// workers. After the first error no further fn calls start, but dependency
// accounting continues so the call always returns. A cyclic graph is
// reported as an error before any fn runs.
func DAG(par int, deps [][]int, fn func(int) error) error {
	return dagOn(N(par), goSpawner, deps, fn)
}

// dagOn is the shared DAG core, parameterized like doOn.
func dagOn(workers int, spawn spawner, deps [][]int, fn func(int) error) error {
	n := len(deps)
	if n == 0 {
		return nil
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, d := range ds {
			if d < 0 || d >= n {
				return fmt.Errorf("par: dependency %d of node %d out of range", d, i)
			}
			dependents[d] = append(dependents[d], i)
		}
	}
	// Kahn pre-pass: verify the graph is acyclic (and compute a sequential
	// order as a byproduct).
	order := make([]int, 0, n)
	degree := append([]int(nil), indeg...)
	for i, d := range degree {
		if d == 0 {
			order = append(order, i)
		}
	}
	for head := 0; head < len(order); head++ {
		for _, d := range dependents[order[head]] {
			if degree[d]--; degree[d] == 0 {
				order = append(order, d)
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("par: dependency graph has a cycle")
	}

	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, i := range order {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	ready := make(chan int, n) // total sends are bounded by n: never blocks
	var (
		mu       sync.Mutex
		firstErr error
		done     int
		wg       sync.WaitGroup
	)
	for i, d := range indeg {
		if d == 0 {
			ready <- i
		}
	}
	puller := func() {
		for i := range ready {
			mu.Lock()
			skip := firstErr != nil
			mu.Unlock()
			var err error
			if !skip {
				err = fn(i)
			}
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			done++
			for _, d := range dependents[i] {
				if indeg[d]--; indeg[d] == 0 {
					ready <- d
				}
			}
			if done == n {
				close(ready)
			}
			mu.Unlock()
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		if !spawn(func() { defer wg.Done(); puller() }) {
			wg.Done()
			break
		}
	}
	puller()
	wg.Wait()
	return firstErr
}
