package par

import "sync"

// Pool is a reusable, fixed-size worker pool. Do and DAG mirror the package
// functions but borrow the pool's persistent goroutines instead of spawning
// fresh ones per call, which matters for callers that run the solver many
// times (TSensDP's per-release passes, incremental session rebuilds).
//
// Scheduling is deadlock-free by construction: every Do/DAG call runs one
// worker inline on the calling goroutine and hands the others to the pool
// with a non-blocking submit, so a saturated (or even closed) pool only
// reduces parallelism, never progress. Multiple goroutines may share one
// Pool concurrently.
type Pool struct {
	n     int
	queue chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts a pool of n persistent workers (n < 1 means GOMAXPROCS).
func NewPool(n int) *Pool {
	n = N(n)
	p := &Pool{n: n, queue: make(chan func(), 4*n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.queue {
				task()
			}
		}()
	}
	return p
}

// Size returns the number of persistent workers.
func (p *Pool) Size() int { return p.n }

// Close stops the workers once queued tasks drain. Calls to Do and DAG
// remain valid after Close (they run inline, sequentially).
func (p *Pool) Close() {
	p.once.Do(func() {
		close(p.queue)
		p.wg.Wait()
	})
}

// submit hands task to a pool worker without blocking, reporting false when
// the queue is full or the pool is closed.
func (p *Pool) submit(task func()) (ok bool) {
	defer func() {
		if recover() != nil { // send on closed queue
			ok = false
		}
	}()
	select {
	case p.queue <- task:
		return true
	default:
		return false
	}
}

// Do is the pool-backed par.Do: fn(i) for i in [0, n) on at most
// min(N(limit), Size()+1) workers, one of them the calling goroutine.
func (p *Pool) Do(limit, n int, fn func(int) error) error {
	workers := N(limit)
	if workers > p.n+1 {
		workers = p.n + 1
	}
	return doOn(workers, p.submit, n, fn)
}

// DAG is the pool-backed par.DAG.
func (p *Pool) DAG(limit int, deps [][]int, fn func(int) error) error {
	workers := N(limit)
	if workers > p.n+1 {
		workers = p.n + 1
	}
	return dagOn(workers, p.submit, deps, fn)
}
