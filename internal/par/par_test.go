package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoRunsAll(t *testing.T) {
	for _, p := range []int{0, 1, 2, 8} {
		var hits [100]atomic.Int32
		if err := Do(p, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("par=%d: index %d ran %d times", p, i, hits[i].Load())
			}
		}
	}
}

func TestDoPropagatesError(t *testing.T) {
	want := errors.New("boom")
	for _, p := range []int{1, 4} {
		err := Do(p, 50, func(i int) error {
			if i == 17 {
				return want
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("par=%d: err=%v", p, err)
		}
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestDAGRespectsDependencies runs a binary-tree-shaped graph and checks
// every node starts only after its dependencies completed.
func TestDAGRespectsDependencies(t *testing.T) {
	n := 127
	deps := make([][]int, n)
	for i := 1; i < n; i++ {
		deps[i] = []int{(i - 1) / 2} // parent first (a pre-order pass)
	}
	for _, p := range []int{0, 1, 3} {
		var mu sync.Mutex
		done := make([]bool, n)
		err := DAG(p, deps, func(i int) error {
			mu.Lock()
			defer mu.Unlock()
			for _, d := range deps[i] {
				if !done[d] {
					t.Errorf("par=%d: node %d ran before dependency %d", p, i, d)
				}
			}
			done[i] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range done {
			if !d {
				t.Fatalf("par=%d: node %d never ran", p, i)
			}
		}
	}
}

func TestDAGPropagatesError(t *testing.T) {
	want := errors.New("boom")
	deps := [][]int{nil, {0}, {1}, {2}}
	for _, p := range []int{1, 4} {
		err := DAG(p, deps, func(i int) error {
			if i == 1 {
				return want
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("par=%d: err=%v", p, err)
		}
	}
}

func TestDAGCycle(t *testing.T) {
	deps := [][]int{{1}, {0}}
	if err := DAG(2, deps, func(int) error { t.Fatal("ran"); return nil }); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestDAGBadDependency(t *testing.T) {
	if err := DAG(1, [][]int{{5}}, func(int) error { return nil }); err == nil {
		t.Fatal("out-of-range dependency not detected")
	}
}

func TestN(t *testing.T) {
	if N(3) != 3 {
		t.Fatal("explicit parallelism ignored")
	}
	if N(0) < 1 || N(-1) < 1 {
		t.Fatal("default parallelism must be at least 1")
	}
}
