// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7). Each Benchmark* function corresponds to one artifact:
//
//	BenchmarkFig6a7_*   — Figure 6a (sensitivities) and Figure 7 (runtimes):
//	                      per-query TSens / Elastic / evaluation timings
//	BenchmarkFig6b      — Figure 6b: per-relation most sensitive tuple of q3
//	BenchmarkTable1_*   — Table 1: the four Facebook queries
//	BenchmarkTable2_*   — Table 2: TSensDP vs PrivSQL per query
//	BenchmarkParamStudy — Section 7.3's ℓ parameter study
//	BenchmarkAblation_* — design-choice ablations called out in DESIGN.md
//
// The absolute numbers (fixture scales 1e-4…1e-2) are laptop-sized; the
// full sweeps live in cmd/experiments.
package tsens

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tsens/internal/core"
	"tsens/internal/elastic"
	"tsens/internal/experiments"
	"tsens/internal/mechanism"
	"tsens/internal/workload"
	"tsens/internal/yannakakis"
)

const benchSeed = 20200409 // arXiv date of the paper

var (
	benchTPCH     = map[float64]*Database{}
	benchFacebook *Database
)

func tpchDB(scale float64) *Database {
	if db, ok := benchTPCH[scale]; ok {
		return db
	}
	db := workload.TPCHData(scale, benchSeed)
	benchTPCH[scale] = db
	return db
}

func facebookDB() *Database {
	if benchFacebook == nil {
		benchFacebook = workload.FacebookDataSized(120, 1200, 250, benchSeed)
	}
	return benchFacebook
}

// benchSpecTSens measures one TSens run per iteration.
func benchSpecTSens(b *testing.B, s *workload.Spec, db *Database) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.LocalSensitivity(s.Query, db, s.Options())
		if err != nil {
			b.Fatal(err)
		}
		if res.LS < 0 {
			b.Fatal("impossible")
		}
	}
}

func benchSpecElastic(b *testing.B, s *workload.Spec, db *Database) {
	b.Helper()
	an, err := elastic.NewAnalyzer(s.Query, db) // preprocessing untimed, as in the paper
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.LocalSensitivity(s.JoinOrder); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSpecEval(b *testing.B, s *workload.Spec, db *Database) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if s.Decomp != nil {
			_, err = yannakakis.CountGHD(s.Query, db, s.Decomp)
		} else {
			_, err = yannakakis.Count(s.Query, db)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 6a and 7: q1, q2, q3 across scales × {TSens, Elastic, evaluation}.
func BenchmarkFig6a7(b *testing.B) {
	scales := []float64{0.0001, 0.001}
	for _, scale := range scales {
		db := tpchDB(scale)
		for _, s := range workload.TPCH() {
			if s.Name == "q3" && scale > experiments.MaxQ3Scale {
				continue
			}
			spec := s
			b.Run(fmt.Sprintf("%s/scale=%g/TSens", spec.Name, scale), func(b *testing.B) {
				benchSpecTSens(b, spec, db)
			})
			b.Run(fmt.Sprintf("%s/scale=%g/Elastic", spec.Name, scale), func(b *testing.B) {
				benchSpecElastic(b, spec, db)
			})
			b.Run(fmt.Sprintf("%s/scale=%g/Eval", spec.Name, scale), func(b *testing.B) {
				benchSpecEval(b, spec, db)
			})
		}
	}
}

// Figure 6b: most sensitive tuple of every q3 relation.
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6b(0.001, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1: the four Facebook queries × {TSens, Elastic, evaluation}.
func BenchmarkTable1(b *testing.B) {
	db := facebookDB()
	for _, s := range workload.Facebook() {
		spec := s
		b.Run(spec.Name+"/TSens", func(b *testing.B) { benchSpecTSens(b, spec, db) })
		b.Run(spec.Name+"/Elastic", func(b *testing.B) { benchSpecElastic(b, spec, db) })
		b.Run(spec.Name+"/Eval", func(b *testing.B) { benchSpecEval(b, spec, db) })
	}
}

// Table 2: the two DP mechanisms per query.
func BenchmarkTable2(b *testing.B) {
	for _, s := range workload.All() {
		spec := s
		var db *Database
		if spec.Name == "q1" || spec.Name == "q2" || spec.Name == "q3" {
			db = tpchDB(0.001)
		} else {
			db = facebookDB()
		}
		b.Run(spec.Name+"/TSensDP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(benchSeed + int64(i)))
				_, err := mechanism.TSensDP(spec.Query, db, spec.Options(), spec.PrimaryPrivate,
					mechanism.TSensDPConfig{Epsilon: 1, Bound: spec.SensBound}, rng)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(spec.Name+"/PrivSQL", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(benchSeed + int64(i)))
				_, err := mechanism.PrivSQL(spec.Query, db, spec.Options(), spec.PrimaryPrivate,
					spec.Policy, spec.JoinOrder, mechanism.PrivSQLConfig{Epsilon: 1}, rng)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Section 7.3 parameter study: TSensDP on q* across ℓ values.
func BenchmarkParamStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ParamStudy([]int64{1, 10, 100}, 3,
			experiments.FacebookSize{Nodes: 60, Edges: 400, Circles: 80}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: Algorithm 1 (path specialization) vs Algorithm 2 (general tree)
// on the same path query — the constant-factor benefit DESIGN.md notes.
func BenchmarkAblation_PathVsTree(b *testing.B) {
	db := tpchDB(0.001)
	s := workload.Q1()
	b.Run("Algorithm1_Path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PathLocalSensitivity(s.Query, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Algorithm2_Tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.LocalSensitivity(s.Query, db, s.Options()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: exact vs top-k-approximate top/botjoins on the path query
// (Section 5.4 "Efficient approximations").
func BenchmarkAblation_TopK(b *testing.B) {
	db := tpchDB(0.001)
	s := workload.Q1()
	for _, k := range []int{0, 16, 256} {
		k := k
		name := "exact"
		if k > 0 {
			name = fmt.Sprintf("top%d", k)
		}
		b.Run(name, func(b *testing.B) {
			opts := s.Options()
			opts.TopK = k
			for i := 0; i < b.N; i++ {
				if _, err := core.LocalSensitivity(s.Query, db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: TSens vs the naive Theorem 3.1 oracle, the comparison of
// Sections 4.1 and 5.2 (the oracle re-evaluates per candidate).
func BenchmarkAblation_TSensVsNaive(b *testing.B) {
	db := workload.TPCHData(0.00002, benchSeed) // tiny: the oracle is quadratic+
	s := workload.Q1()
	b.Run("TSens", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.LocalSensitivity(s.Query, db, s.Options()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NaiveLocalSensitivity(s.Query, db, core.NaiveOptions{MaxCandidates: 5000000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Section 8 claim: elastic sensitivity ignores selections while TSens
// tracks them (the selection study of EXPERIMENTS.md).
func BenchmarkAblation_SelectionStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SelectionStudy(0.0005, benchSeed, []float64{1, 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Section 5.4's top-k approximation across k values.
func BenchmarkAblation_TopKStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TopKStudy(0.0005, benchSeed, []int{0, 4, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionUpdate: one single-tuple update (insert or delete,
// alternating so the database size stays put) followed by reading LS()
// through an incremental session, against the from-scratch
// core.LocalSensitivity the session replaces — on the Table-1-scale
// Facebook fixture across all four evaluation queries.
func BenchmarkSessionUpdate(b *testing.B) {
	db := facebookDB()
	for _, s := range workload.Facebook() {
		spec := s
		rel := spec.PrimaryPrivate
		row := db.Relation(rel).Rows[0].Clone()
		b.Run(spec.Name+"/Session", func(b *testing.B) {
			sess, err := OpenSession(spec.Query, db, SessionOptions{Options: spec.Options()})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					err = sess.Insert(rel, row)
				} else {
					err = sess.Delete(rel, row)
				}
				if err != nil {
					b.Fatal(err)
				}
				res, err := sess.LS()
				if err != nil {
					b.Fatal(err)
				}
				if res.LS < 0 {
					b.Fatal("impossible")
				}
			}
		})
		b.Run(spec.Name+"/Scratch", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.LocalSensitivity(spec.Query, db, spec.Options())
				if err != nil {
					b.Fatal(err)
				}
				if res.LS < 0 {
					b.Fatal("impossible")
				}
			}
		})
	}
}

// BenchmarkServeThroughput: sustained reader queries/sec against a live
// server on the Table-1 Facebook fixture, with a background goroutine
// feeding the update log the whole time. All four evaluation queries are
// registered (multiplexed over one snapshot); each iteration is one LS read
// from a published epoch view, round-robin across the queries. The writer's
// update throughput over the same window is reported as updates/sec.
func BenchmarkServeThroughput(b *testing.B) {
	db := facebookDB()
	stream := GenerateUpdateStream(db, 20000, 0.4, benchSeed)
	srv, err := NewServer(db, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var ids []string
	for _, s := range workload.Facebook() {
		id, _, err := srv.Register(ServerQuery{ID: s.Name, Query: s.Query, Options: s.Options()})
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	stop := make(chan struct{})
	feederDone := make(chan struct{})
	go func() {
		// Feed in small appends until told to stop; wrapping past the end
		// re-plays the stream (stale deletes are skipped by the writer).
		// Backpressure keeps the log backlog bounded so the benchmark
		// measures a steady state, not an unbounded queue.
		defer close(feederDone)
		const chunk = 16
		for off := 0; ; off = (off + chunk) % len(stream) {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st := srv.Stats(); st.Appended-st.Epoch <= 512 {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			if _, _, err := srv.Append(stream[off:end]); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	startEpoch := srv.Epoch()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			res, _, err := srv.LS(ids[i%len(ids)])
			i++
			if err != nil {
				b.Error(err)
				return
			}
			if res.LS < 0 {
				b.Error("impossible")
				return
			}
		}
	})
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	close(stop)
	<-feederDone
	if elapsed > 0 {
		b.ReportMetric(float64(srv.Epoch()-startEpoch)/elapsed, "updates/sec")
	}
}

// BenchmarkServeManyQueries: per-update drain cost as the number of
// registered queries grows with heavy overlap — the sweep cycles the four
// Facebook queries, so at 128 registrations each distinct text has 32
// byte-identical copies sharing one hash-consed plan via the per-shard
// PlanStore. The headline metric is ns/update/query: with sharing, the
// 128-query per-update cost must stay far below 128× the 1-query cost
// (one shared patch plus cheap memo replays, instead of 128 independent
// delta propagations). The same sweep feeds the serve_many_queries block
// of the bench trajectory (cmd/tsens bench).
func BenchmarkServeManyQueries(b *testing.B) {
	db := facebookDB()
	specs := workload.Facebook()
	stream := GenerateUpdateStream(db, 8192, 0.4, benchSeed)
	for _, nq := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("queries=%d", nq), func(b *testing.B) {
			srv, err := NewServer(db, ServerOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			for i := 0; i < nq; i++ {
				s := specs[i%len(specs)]
				q := ServerQuery{ID: fmt.Sprintf("%s#%d", s.Name, i), Query: s.Query, Options: s.Options()}
				if _, _, err := srv.Register(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for applied, off := 0, 0; applied < b.N; {
				end := off + 64
				if end > len(stream) {
					end = len(stream)
				}
				if rem := b.N - applied; end-off > rem {
					end = off + rem
				}
				// Wrapping past the end replays the stream; stale deletes
				// are skipped by the writer.
				if _, _, err := srv.Append(stream[off:end]); err != nil {
					b.Fatal(err)
				}
				applied += end - off
				off = end % len(stream)
				// Bounded backlog: measure steady-state drain, not queueing.
				if st := srv.Stats(); st.Appended-st.Epoch > 512 {
					if err := srv.WaitApplied(st.Appended); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := srv.WaitApplied(srv.Stats().Appended); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nq), "ns/update/query")
		})
	}
}

// BenchmarkServeShardedThroughput: update-drain throughput of the sharded
// write path across 1/2/4/8 shards on a multi-key workload. The query is a
// three-way star sharing its key variable across every atom, so it
// partitions into one sub-session per shard and updates for disjoint keys
// patch in parallel; each iteration drains one pre-generated multi-key
// insert/delete stream through the log and waits for the joined cut.
// Server construction (per-shard session opens) happens off the clock.
// The headline metric is updates/sec: the acceptance bar for PR 4 is ≥2×
// at shards=4 over shards=1.
func BenchmarkServeShardedThroughput(b *testing.B) {
	const (
		rows    = 20000
		keys    = 2000
		valDom  = 50
		streamN = 4096
	)
	rng := rand.New(rand.NewSource(benchSeed))
	mk := func(name string) *Relation {
		rs := make([]Tuple, rows)
		for i := range rs {
			rs[i] = Tuple{int64(rng.Intn(keys)), int64(rng.Intn(valDom))}
		}
		r, err := NewRelation(name, []string{name + "_k", name + "_v"}, rs)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	db, err := NewDatabase(mk("S1"), mk("S2"), mk("S3"))
	if err != nil {
		b.Fatal(err)
	}
	q, err := ParseQuery("star", "S1(A,B), S2(A,C), S3(A,D)")
	if err != nil {
		b.Fatal(err)
	}
	stream := GenerateUpdateStream(db, streamN, 0.4, benchSeed+1)

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv, err := NewServer(db, ServerOptions{
					Shards:        shards,
					BatchSize:     256,
					BulkThreshold: -1, // keep big drained batches on the delta path
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := srv.Register(ServerQuery{ID: "star", Query: q}); err != nil {
					srv.Close()
					b.Fatal(err)
				}
				b.StartTimer()
				_, to, err := srv.Append(stream)
				if err != nil {
					b.Fatal(err)
				}
				if err := srv.WaitApplied(to); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				srv.Close()
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				// The headline axis. One core caps the curve near 1×: the
				// per-shard patches are CPU-bound, so the speedup tracks
				// min(shards, GOMAXPROCS) on real hardware.
				b.ReportMetric(float64(streamN*b.N)/sec, "updates/sec")
			}
		})
	}
}

// Micro-benchmark: the TupleSensitivities evaluator TSensDP depends on.
func BenchmarkTupleSensitivities(b *testing.B) {
	db := tpchDB(0.001)
	s := workload.Q1()
	fn, err := core.TupleSensitivities(s.Query, db, "CUSTOMER", s.Options())
	if err != nil {
		b.Fatal(err)
	}
	rows := db.Relation("CUSTOMER").Rows
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fn(rows[i%len(rows)])
	}
}
