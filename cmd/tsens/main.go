// Command tsens computes the local sensitivity of a conjunctive counting
// query over CSV relations.
//
// Usage:
//
//	tsens -data ./mydata -query "R1(A,B), R2(B,C) where R2.C >= 5" [flags]
//
// The data directory holds one <RelationName>.csv file per relation, first
// row being the column names. Values may be integers or arbitrary strings
// (dictionary-encoded internally). Cyclic queries need -bags, e.g.
// -bags "0,1;2" to put atoms 0 and 1 in one GHD bag and atom 2 in another.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tsens/internal/core"
	"tsens/internal/csvio"
	"tsens/internal/elastic"
	"tsens/internal/ghd"
	"tsens/internal/parser"
	"tsens/internal/query"
	"tsens/internal/relation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tsens:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataDir   = flag.String("data", "", "directory of <Relation>.csv files")
		queryText = flag.String("query", "", `query body, e.g. "R1(A,B), R2(B,C) where R2.C >= 5"`)
		bagsSpec  = flag.String("bags", "", `GHD bags for cyclic queries: atom indexes, ";"-separated bags, e.g. "0,1;2"`)
		skip      = flag.String("skip", "", "comma-separated relations to skip (known tuple sensitivity ≤ 1)")
		topK      = flag.Int("topk", 0, "top-k approximation of top/botjoins (0 = exact)")
		naive     = flag.Bool("naive", false, "also run the naive Theorem 3.1 oracle (slow; small data only)")
		showElas  = flag.Bool("elastic", false, "also report the elastic-sensitivity upper bound")
		perRel    = flag.Bool("per-relation", false, "print the most sensitive tuple of every relation")
		downward  = flag.Bool("downward", false, "also report the deletion-only (downward) local sensitivity")
		explain   = flag.Bool("explain", false, "print the join tree (or GHD bag tree) the algorithm runs on")
		tupleSpec = flag.String("tuple", "", `evaluate δ of one tuple: "Relation:v1,v2,..." (values as in the CSVs)`)
	)
	flag.Parse()
	if *dataDir == "" || *queryText == "" {
		flag.Usage()
		return fmt.Errorf("-data and -query are required")
	}

	loader := csvio.NewLoader()
	db, err := loader.LoadDir(*dataDir)
	if err != nil {
		return err
	}
	q, err := parser.Parse("q", *queryText)
	if err != nil {
		return err
	}

	opts := core.Options{TopK: *topK}
	if *skip != "" {
		opts.SkipRelations = strings.Split(*skip, ",")
	}
	if *bagsSpec != "" {
		bags, err := parseBags(*bagsSpec)
		if err != nil {
			return err
		}
		opts.Decomposition, err = ghd.FromBags(q, bags)
		if err != nil {
			return err
		}
	} else if !query.IsAcyclic(q.Atoms) {
		d, err := ghd.Search(q, 0)
		if err != nil {
			return fmt.Errorf("query is cyclic and no -bags given; automatic search failed: %w", err)
		}
		opts.Decomposition = d
		fmt.Printf("query is cyclic; using searched GHD bags %v\n", d.Bags)
	}

	if *explain {
		atoms := q.Atoms
		if opts.Decomposition != nil {
			atoms = opts.Decomposition.BagAtoms(q)
		}
		tree, err := query.BuildJoinTree(atoms)
		if err != nil {
			return err
		}
		fmt.Println("join tree:")
		fmt.Print(tree.Render())
		fmt.Printf("doubly acyclic: %v\n\n", tree.IsDoublyAcyclic())
	}

	res, err := core.LocalSensitivity(q, db, opts)
	if err != nil {
		return err
	}
	fmt.Printf("query            : %s\n", q)
	fmt.Printf("|Q(D)|           : %d\n", res.Count)
	fmt.Printf("local sensitivity: %d%s\n", res.LS, approxMark(res.Approximate))
	fmt.Printf("doubly acyclic   : %v (max join-tree degree %d)\n", res.DoublyAcyclic, res.MaxDegree)
	if res.Best != nil {
		fmt.Printf("most sensitive   : %s\n", renderTuple(loader, res.Best))
	}
	if *perRel {
		fmt.Println("\nper-relation most sensitive tuples:")
		for _, a := range q.Atoms {
			tr, ok := res.PerRelation[a.Relation]
			if !ok {
				fmt.Printf("  %-12s skipped\n", a.Relation)
				continue
			}
			fmt.Printf("  %-12s δ=%-8d %s\n", a.Relation, tr.Sensitivity, renderTuple(loader, tr))
		}
	}
	if *showElas {
		an, err := elastic.NewAnalyzer(q, db)
		if err != nil {
			return err
		}
		bound, err := an.LocalSensitivity(elastic.DefaultOrder(q))
		if err != nil {
			return err
		}
		fmt.Printf("elastic bound    : %d\n", bound)
	}
	if *naive {
		nres, err := core.NaiveLocalSensitivity(q, db, core.NaiveOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("naive oracle     : %d (agrees: %v)\n", nres.LS, nres.LS == res.LS)
	}
	if *downward {
		dres, err := core.DownwardLocalSensitivity(q, db, opts)
		if err != nil {
			return err
		}
		fmt.Printf("downward LS      : %d", dres.LS)
		if dres.Best != nil && dres.Best.Values != nil {
			fmt.Printf("  via %s", renderTuple(loader, dres.Best))
		}
		fmt.Println()
	}
	if *tupleSpec != "" {
		rel, vals, err := parseTuple(loader, *tupleSpec)
		if err != nil {
			return err
		}
		fn, err := core.TupleSensitivities(q, db, rel, opts)
		if err != nil {
			return err
		}
		fmt.Printf("δ(%s) = %d\n", *tupleSpec, fn(vals))
	}
	return nil
}

// parseTuple decodes "Relation:v1,v2,..." with the loader's dictionary, so
// string values written in the CSVs resolve to the same codes.
func parseTuple(loader *csvio.Loader, spec string) (string, relation.Tuple, error) {
	colon := strings.Index(spec, ":")
	if colon < 0 {
		return "", nil, fmt.Errorf(`-tuple must be "Relation:v1,v2,..."`)
	}
	rel := strings.TrimSpace(spec[:colon])
	var vals relation.Tuple
	for _, f := range strings.Split(spec[colon+1:], ",") {
		v, err := loader.Encode(strings.TrimSpace(f))
		if err != nil {
			return "", nil, err
		}
		vals = append(vals, v)
	}
	return rel, vals, nil
}

func approxMark(approx bool) string {
	if approx {
		return " (upper bound: top-k approximation)"
	}
	return ""
}

func renderTuple(loader *csvio.Loader, tr *core.TupleResult) string {
	if tr.Values == nil {
		return fmt.Sprintf("%s: none (sensitivity 0)", tr.Relation)
	}
	parts := make([]string, len(tr.Vars))
	for i := range tr.Vars {
		if tr.Wildcard[i] {
			parts[i] = fmt.Sprintf("%s=*", tr.Vars[i])
		} else {
			parts[i] = fmt.Sprintf("%s=%s", tr.Vars[i], loader.Decode(tr.Values[i]))
		}
	}
	mode := "insert"
	if tr.InDatabase {
		mode = "in database (delete or insert)"
	}
	return fmt.Sprintf("%s(%s)  δ=%d  [%s]", tr.Relation, strings.Join(parts, ", "), tr.Sensitivity, mode)
}

func parseBags(spec string) ([][]int, error) {
	var bags [][]int
	for _, bagStr := range strings.Split(spec, ";") {
		var bag []int
		for _, f := range strings.Split(bagStr, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("bad atom index %q in -bags", f)
			}
			bag = append(bag, v)
		}
		if len(bag) > 0 {
			bags = append(bags, bag)
		}
	}
	return bags, nil
}
