// Command tsens computes the local sensitivity of a conjunctive counting
// query over CSV relations.
//
// Usage:
//
//	tsens -data ./mydata -query "R1(A,B), R2(B,C) where R2.C >= 5" [flags]
//	tsens updates -data ./mydata -query "R1(A,B), R2(B,C)" [-stream f] [-batch n]
//	tsens serve -data ./mydata [-addr host:port] [-query ... -private R2] [-replay f] [-shards n]
//	tsens serve -wal ./wal -replicate host:port [-lease f]      (replicating leader)
//	tsens serve -wal ./wal2 -follow host:port [-lease f]        (read-serving follower)
//
// The data directory holds one <RelationName>.csv file per relation, first
// row being the column names. Values may be integers or arbitrary strings
// (dictionary-encoded internally). Cyclic queries need -bags, e.g.
// -bags "0,1;2" to put atoms 0 and 1 in one GHD bag and atom 2 in another.
//
// The updates subcommand opens an incremental session over the snapshot and
// replays a single-tuple insert/delete stream (datagen -updates writes one
// as updates.stream), printing |Q(D)| and LS after every batch — each batch
// costing a delta propagation instead of a from-scratch solve.
//
// The serve subcommand starts the long-lived DP query server over the
// snapshot: registered queries are maintained incrementally under a live
// update log and answered concurrently over an HTTP/JSON API, with
// budget-accounted ε-DP releases (see docs/SERVING.md). The write path is
// sharded (-shards): updates route to per-shard writers by the hash of
// their relation's routing column (-partition), and queries sharing a
// variable across all atoms at those columns are maintained as one
// sub-session per shard.
//
// A durable server (-wal) can replicate: -replicate starts the WAL-shipping
// listener followers connect to, -follow runs the process as a follower of
// that address (wait-free epoch reads, writes and releases refused with 503
// — the ε-ledger has exactly one writer). With -lease both sides arbitrate
// leadership through a lease file: the leader renews it and fences itself
// on loss; a follower promotes itself through the ordinary WAL recovery
// when the lease expires (docs/SERVING.md, "Replication & failover").
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"tsens/internal/core"
	"tsens/internal/csvio"
	"tsens/internal/elastic"
	"tsens/internal/ghd"
	"tsens/internal/incremental"
	"tsens/internal/mechanism"
	"tsens/internal/obs"
	"tsens/internal/parser"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/serve"
	"tsens/internal/serve/replica"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain dispatches and maps errors to exit codes uniformly across all
// subcommands: usage errors (bad flags, missing required ones) exit 2, as
// flag.ExitOnError would; runtime failures exit 1; -h exits 0. Before this
// unification, subcommand flag errors exited 2 while every top-level error
// exited 1, so scripts could not tell a typo from a crash.
func realMain(args []string) int {
	var err error
	switch {
	case len(args) > 0 && args[0] == "updates":
		err = runUpdates(args[1:])
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:])
	case len(args) > 0 && args[0] == "bench":
		err = runBench(args[1:])
	default:
		err = run(args)
	}
	if err == nil {
		return 0
	}
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue *usageError
	if errors.As(err, &ue) {
		if !ue.quiet {
			fmt.Fprintln(os.Stderr, "tsens:", err)
		}
		return 2
	}
	fmt.Fprintln(os.Stderr, "tsens:", err)
	return 1
}

// usageError marks a command-line usage problem (exit code 2). quiet means
// the flag package already printed the message and the usage text.
type usageError struct {
	err   error
	quiet bool
}

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// parseFlags wraps FlagSet.Parse, classifying parse failures as usage
// errors and letting -h through as flag.ErrHelp.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &usageError{err: err, quiet: true}
	}
	return nil
}

// serveCmd is the assembled state of tsens serve, split from runServe so
// tests can drive the handler without binding a port for real traffic.
// Exactly one of srv/follower is live at a time: srv for a standalone or
// leading process (leader/replLn set when it also replicates), follower
// until a promotion installs the recovered server in its place.
type serveCmd struct {
	api    *serve.API
	ln     net.Listener
	replay func() error // nil without -replay

	lease    replica.LeaseStore // nil without -lease
	holder   string
	ttl      time.Duration
	replAddr string                  // -replicate; a promoted follower re-listens here
	fopts    replica.FollowerOptions // to restart following after a refused promotion

	log *obs.Logger // structured operational log (never nil after buildServe)

	mu       sync.Mutex
	stopped  bool
	srv      *serve.Server
	follower *replica.Follower
	leader   *replica.Leader
	replLn   net.Listener
}

// shutdown tears the process down in dependency order: stop shipping (and
// release the lease) before the server writes its final checkpoint; a
// follower just stops mirroring. Idempotent — the signal path and runServe's
// defer both reach it.
func (c *serveCmd) shutdown() {
	c.mu.Lock()
	c.stopped = true
	ld, f, srv, rln := c.leader, c.follower, c.srv, c.replLn
	c.leader, c.follower, c.srv, c.replLn = nil, nil, nil, nil
	c.mu.Unlock()
	if rln != nil {
		rln.Close()
	}
	if ld != nil {
		ld.Close()
	}
	if f != nil {
		f.Close()
	}
	if srv != nil {
		srv.Close() // graceful: drain + final checkpoint
	}
}

// holderName identifies this process in the lease file.
func holderName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "tsens"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// promoteLoop watches the lease while following. The leader renews it every
// TTL/3, so an unexpired lease means the leader is alive; an expired (or
// gracefully released) one means the follower should take over. Promotion
// runs the ordinary WAL recovery over the mirrored directory — acknowledged
// writes and spent ε carry over exactly.
func (c *serveCmd) promoteLoop(stop <-chan struct{}) {
	tick := c.ttl / 3
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		f := c.follower
		c.mu.Unlock()
		if f == nil {
			return // promoted (or shut down)
		}
		if f.Server() == nil {
			continue // nothing replicated yet; promoting would refuse anyway
		}
		l, ok, err := c.lease.Get()
		if err != nil || !ok {
			continue // no leader has ever led under this lease file
		}
		if l.Holder != c.holder && time.Now().Before(l.Expires) {
			continue // leader alive
		}
		c.tryPromote(f)
	}
}

// tryPromote promotes f, installing the recovered server as the new leading
// backend (and, with -replicate, a fresh shipping listener under a new
// lineage). Promote consumes the follower regardless of outcome, so a
// refusal — e.g. another follower won the lease race — restarts following.
func (c *serveCmd) tryPromote(f *replica.Follower) {
	c.log.Info("leader lease expired; promoting from replicated state")
	srv, err := f.Promote(replica.PromoteOptions{Lease: c.lease, Holder: c.holder, TTL: c.ttl})
	if err != nil {
		c.log.Warn("promotion refused; restarting follower", "err", err)
		nf, ferr := replica.StartFollower(c.fopts)
		if ferr != nil {
			c.log.Error("restarting follower failed", "err", ferr)
			return
		}
		c.installFollower(nf)
		return
	}
	ld, err := replica.NewLeader(srv, replica.LeaderOptions{Lease: c.lease, Holder: c.holder, TTL: c.ttl})
	if err != nil {
		// Someone else took the lease between Promote and here; they lead.
		// Keep serving reads, but fence so no acknowledgment slips out.
		srv.Fence(err)
		c.log.Error("lease lost after promotion; fenced", "err", err)
	}
	var rln net.Listener
	if ld != nil && c.replAddr != "" {
		if rln, err = net.Listen("tcp", c.replAddr); err != nil {
			c.log.Error("replication listener failed", "err", err)
		}
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		if rln != nil {
			rln.Close()
		}
		if ld != nil {
			ld.Close()
		}
		srv.Close()
		return
	}
	c.follower, c.srv, c.leader, c.replLn = nil, srv, ld, rln
	c.mu.Unlock()
	c.api.SetServer(srv)
	c.api.SetStatus(func() serve.Status { return serve.Status{State: serve.StateLeading} })
	if rln != nil {
		go serveReplication(c.log, ld, rln)
	}
	st := srv.Stats()
	c.log.Info("promoted: leading", "epoch", st.Epoch, "queries", st.Queries)
}

// installFollower swaps a freshly started follower in (after a refused
// promotion), or closes it when the process is already shutting down.
func (c *serveCmd) installFollower(f *replica.Follower) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		f.Close()
		return
	}
	c.follower = f
	c.mu.Unlock()
	c.api.SetServerFunc(f.Server)
	c.api.SetStatus(f.Status)
}

// serveReplication runs the WAL-shipping accept loop; its error surfaces on
// the structured log rather than killing the HTTP side (reads stay up
// without replication).
func serveReplication(log *obs.Logger, ld *replica.Leader, ln net.Listener) {
	if err := ld.Serve(ln); err != nil {
		log.Error("replication listener exited", "err", err)
	}
}

// buildServe parses the serve flags, loads the snapshot, starts the server
// (recovering from -wal when the directory holds state), registers the
// optional startup query, and binds the listener.
func buildServe(args []string) (*serveCmd, error) {
	fs := flag.NewFlagSet("tsens serve", flag.ContinueOnError)
	var (
		dataDir    = fs.String("data", "", "directory of <Relation>.csv files (the snapshot)")
		addr       = fs.String("addr", "127.0.0.1:8181", "HTTP listen address")
		queryText  = fs.String("query", "", "register this query at startup (more via POST /queries)")
		queryID    = fs.String("id", "q1", "id of the startup query")
		bagsSpec   = fs.String("bags", "", `GHD bags for a cyclic startup query, e.g. "0,1;2"`)
		skip       = fs.String("skip", "", "comma-separated relations to skip for the startup query")
		private    = fs.String("private", "", "primary private relation of the startup query (enables /release)")
		epsilon    = fs.Float64("epsilon", 1, "ε per fresh release of the startup query")
		bound      = fs.Int64("bound", 100, "TSensDP sensitivity bound ℓ of the startup query")
		budget     = fs.Float64("budget", 0, "total ε budget of the startup query (0 = unlimited)")
		replayFile = fs.String("replay", "", "feed this "+csvio.UpdatesFileName+" stream through the update log")
		replayN    = fs.Int("replay-batch", 32, "updates per replayed append")
		parN       = fs.Int("parallelism", 0, "per-shard fan-out and session parallelism (0 = all cores)")
		batch      = fs.Int("batch", 0, "log entries per epoch (0 = default)")
		shards     = fs.Int("shards", 0, "write-path shards (0 = GOMAXPROCS-bounded default, 1 = single writer)")
		partition  = fs.String("partition", "", `routing columns per relation, e.g. "R1=1,R2=0" (default: column 0)`)
		seed       = fs.Int64("seed", 0, "release-noise seed (0 = cryptographically random; fix only for tests)")
		walDir     = fs.String("wal", "", "durability directory: journal writes and ε spends, recover on restart (docs/SERVING.md)")
		walSync    = fs.Int("wal-sync", 1, "WAL fsync cadence in records (1 = before every acknowledgment)")
		ckptEvery  = fs.Int("checkpoint-every", 0, "log entries between WAL checkpoints (0 = default)")
		replicate  = fs.String("replicate", "", "WAL-shipping listen address for replication followers (requires -wal)")
		follow     = fs.String("follow", "", "run as a read-serving follower of this leader replication address (requires -wal)")
		leasePath  = fs.String("lease", "", "lease file arbitrating leadership: the leader renews it, a follower promotes itself when it expires")
		leaseTTL   = fs.Duration("lease-ttl", 3*time.Second, "lease duration; a crashed leader is succeeded after at most this long")
		debug      = fs.Bool("debug", false, "expose pprof profiling under /debug/pprof/ (metrics at /metrics are always on)")
		logLevel   = fs.String("log-level", "info", "minimum structured-log level: debug, info, warn, or error")
		logJSON    = fs.Bool("log-json", false, "emit structured logs as JSON lines instead of key=value text")
		slowMS     = fs.Int("slow-ms", 0, "slow-trace threshold in milliseconds: traces at or over it are always kept in /debug/traces and logged (0 = default 100ms)")
	)
	if err := parseFlags(fs, args); err != nil {
		return nil, err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return nil, usagef("-log-level: %v", err)
	}
	if *slowMS < 0 {
		return nil, usagef("-slow-ms must be non-negative (milliseconds)")
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	slow := time.Duration(*slowMS) * time.Millisecond
	if *follow != "" {
		switch {
		case *walDir == "":
			fs.Usage()
			return nil, usagef("-follow requires -wal (the follower's own mirror directory)")
		case *queryText != "" || *replayFile != "" || *dataDir != "":
			return nil, usagef("-follow serves replicated state only; -data, -query, and -replay belong on the leader")
		case *leaseTTL <= 0:
			return nil, usagef("-lease-ttl must be positive")
		}
		// -replicate on a follower takes effect after a promotion: the new
		// leader ships its WAL from there under a fresh lineage.
		return buildFollower(*follow, *walDir, *leasePath, *leaseTTL, *addr, *replicate, serve.Options{
			Parallelism:     *parN,
			BatchSize:       *batch,
			Shards:          *shards,
			SyncEvery:       *walSync,
			CheckpointEvery: *ckptEvery,
			Debug:           *debug,
			SlowThreshold:   slow,
			Logger:          logger,
		}, *seed)
	}
	if *replicate != "" && *walDir == "" {
		fs.Usage()
		return nil, usagef("-replicate requires -wal (followers are shipped the WAL)")
	}
	if *leasePath != "" && *replicate == "" {
		return nil, usagef("-lease without -replicate or -follow has nothing to arbitrate")
	}
	if *leaseTTL <= 0 {
		return nil, usagef("-lease-ttl must be positive")
	}
	if *dataDir == "" && *walDir == "" {
		fs.Usage()
		return nil, usagef("-data is required (or -wal pointing at a recoverable directory)")
	}
	var recovering bool
	if *walDir != "" {
		var err error
		if recovering, err = serve.HasWALState(*walDir); err != nil {
			return nil, err
		}
	}
	loader := csvio.NewLoader()
	var db *relation.Database
	if *dataDir != "" && !recovering {
		// A recovering boot ignores the snapshot entirely (the WAL
		// directory is authoritative), so skip the load instead of paying
		// it on every restart.
		var err error
		if db, err = loader.LoadDir(*dataDir); err != nil {
			return nil, err
		}
	}
	if *replayFile != "" && recovering {
		// Replaying the same stream into recovered state would append every
		// update a second time and double the database. New updates go
		// through POST /updates.
		logger.Warn("wal recovered; skipping -replay (already journaled; POST /updates for new ones)",
			"wal", *walDir, "replay", *replayFile)
		*replayFile = ""
	}
	pcols, err := parsePartition(*partition)
	if err != nil {
		return nil, err
	}
	sopts := serve.Options{
		Parallelism:      *parN,
		BatchSize:        *batch,
		Shards:           *shards,
		PartitionColumns: pcols,
		Debug:            *debug,
		SlowThreshold:    slow,
		Logger:           logger,
	}
	if *walDir != "" {
		sopts.WALDir = *walDir
		sopts.SyncEvery = *walSync
		sopts.CheckpointEvery = *ckptEvery
		sopts.WALCodec = loader
	}
	srv, err := serve.New(db, sopts)
	if err != nil {
		return nil, err
	}
	recovered := map[string]string{} // id → recovered query text
	if *walDir != "" {
		st := srv.Stats()
		infos := srv.Queries()
		for _, info := range infos {
			recovered[info.ID] = info.Query
		}
		logger.Info("wal recovered", "wal", *walDir, "epoch", st.Epoch, "queries", len(infos))
	}
	if *queryText != "" {
		if prev, ok := recovered[*queryID]; ok {
			// Restarting with the same startup flags must not
			// double-register: the WAL already carries the query (with its
			// spent ε). But the recovered query must actually BE the one on
			// the command line — silently serving a different body under
			// the requested id would misanswer every read.
			q, err := parser.Parse(*queryID, *queryText)
			if err != nil {
				srv.Close()
				return nil, err
			}
			if q.String() != prev {
				srv.Close()
				return nil, fmt.Errorf("wal %s recovered query %q as %q, but -query asks for %q; unregister it first or pick another -id",
					*walDir, *queryID, prev, q.String())
			}
			logger.Info("startup query already recovered; skipping registration", "id", *queryID)
			*queryText = ""
		}
	}
	if *queryText != "" {
		q, err := parser.Parse(*queryID, *queryText)
		if err != nil {
			srv.Close()
			return nil, err
		}
		cfg := serve.QueryConfig{ID: *queryID, Query: q, Private: *private, Budget: *budget}
		if *private != "" {
			cfg.Release = mechanism.TSensDPConfig{Epsilon: *epsilon, Bound: *bound}
		}
		if *skip != "" {
			cfg.Options.SkipRelations = strings.Split(*skip, ",")
		}
		if *bagsSpec != "" {
			bags, err := parseBags(*bagsSpec)
			if err != nil {
				srv.Close()
				return nil, err
			}
			if cfg.Options.Decomposition, err = ghd.FromBags(q, bags); err != nil {
				srv.Close()
				return nil, err
			}
		} else if !query.IsAcyclic(q.Atoms) {
			d, err := ghd.Search(q, 0)
			if err != nil {
				srv.Close()
				return nil, fmt.Errorf("startup query is cyclic and no -bags given; automatic search failed: %w", err)
			}
			cfg.Options.Decomposition = d
		}
		id, v, err := srv.Register(cfg)
		if err != nil {
			srv.Close()
			return nil, err
		}
		logger.Info("registered startup query", "id", id, "count", v.Count, "ls", v.LS.LS)
	}
	cmd := &serveCmd{srv: srv, api: serve.NewAPI(srv, loader, *seed), ttl: *leaseTTL, replAddr: *replicate, log: logger}
	cmd.api.SetStatus(func() serve.Status { return serve.Status{State: serve.StateLeading} })
	if *replicate != "" {
		lopts := replica.LeaderOptions{TTL: *leaseTTL}
		if *leasePath != "" {
			cmd.lease = replica.NewFileLease(*leasePath)
			cmd.holder = holderName()
			lopts.Lease, lopts.Holder = cmd.lease, cmd.holder
		}
		// ErrLeaseHeld here means another process leads: refuse to start
		// rather than run a second writer against the same lease.
		ld, err := replica.NewLeader(srv, lopts)
		if err != nil {
			srv.Close()
			return nil, err
		}
		rln, err := net.Listen("tcp", *replicate)
		if err != nil {
			ld.Close()
			srv.Close()
			return nil, err
		}
		cmd.leader, cmd.replLn = ld, rln
		logger.Info("replicating", "addr", rln.Addr(), "lineage", ld.Lineage())
	}
	if *replayFile != "" {
		ups, err := loader.LoadUpdates(*replayFile)
		if err != nil {
			cmd.shutdown()
			return nil, err
		}
		n := *replayN
		if n < 1 {
			n = 1
		}
		cmd.replay = func() error {
			for off := 0; off < len(ups); off += n {
				end := off + n
				if end > len(ups) {
					end = len(ups)
				}
				if _, _, err := srv.Append(ups[off:end]); err != nil {
					return fmt.Errorf("replaying %s at update %d: %w", *replayFile, off, err)
				}
			}
			logger.Info("replayed update stream", "updates", len(ups), "stream", *replayFile)
			return nil
		}
	}
	if cmd.ln, err = net.Listen("tcp", *addr); err != nil {
		cmd.shutdown()
		return nil, err
	}
	return cmd, nil
}

// buildFollower assembles follower mode: mirror the leader's WAL stream
// into dir, serve wait-free epoch reads from the passive server it keeps
// live, and — when a lease file arbitrates leadership — stand by to promote
// through the ordinary WAL recovery the moment the lease expires.
func buildFollower(leaderAddr, dir, leasePath string, ttl time.Duration, addr, replAddr string, sopts serve.Options, seed int64) (*serveCmd, error) {
	loader := csvio.NewLoader()
	sopts.WALCodec = loader
	// One process-level registry, pinned on the API: the mirror, the passive
	// server, its replacements after checkpoint resets, and a promoted
	// successor all record here, so /metrics keeps its history across every
	// backend swap.
	reg := obs.NewRegistry()
	sopts.Metrics = reg
	// The trace recorder is pinned the same way: replicated applies, the
	// passive server, and a promoted successor all record into it, and
	// /debug/traces keeps its flight history across every backend swap.
	rec := obs.NewTraceRecorder(reg, 0, sopts.SlowThreshold)
	sopts.Traces = rec
	fopts := replica.FollowerOptions{Dir: dir, Addr: leaderAddr, Serve: sopts}
	f, err := replica.StartFollower(fopts)
	if err != nil {
		return nil, err
	}
	cmd := &serveCmd{
		api:      serve.NewAPI(nil, loader, seed),
		ttl:      ttl,
		replAddr: replAddr,
		fopts:    fopts,
		follower: f,
		log:      sopts.Logger,
	}
	cmd.api.SetMetrics(reg)
	cmd.api.SetTraces(rec)
	if sopts.Debug {
		cmd.api.EnableDebug()
	}
	if leasePath != "" {
		cmd.lease = replica.NewFileLease(leasePath)
		cmd.holder = holderName()
	}
	cmd.api.SetServerFunc(f.Server)
	cmd.api.SetStatus(f.Status)
	if cmd.ln, err = net.Listen("tcp", addr); err != nil {
		cmd.shutdown()
		return nil, err
	}
	return cmd, nil
}

// runServe starts the long-lived DP query server: it loads the CSV
// snapshot (or recovers the -wal directory), optionally registers a first
// query and replays an update stream, and serves the HTTP/JSON API
// (docs/SERVING.md) until killed. SIGINT/SIGTERM shut it down gracefully:
// the acknowledged backlog is drained and, when durable, a final checkpoint
// is written, so a restart resumes instantly at the exact same state.
func runServe(args []string) error {
	cmd, err := buildServe(args)
	if err != nil {
		return err
	}
	defer cmd.shutdown()
	if cmd.replay != nil {
		go func() {
			if err := cmd.replay(); err != nil {
				cmd.log.Error("replay failed", "err", err)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	// Both the signal goroutine and an http.Serve failure race toward
	// shutdown; the Once makes whoever gets there first the only closer.
	stopping := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(stopping) }) }
	defer stop()
	go func() {
		select {
		case s := <-sig:
			cmd.log.Info("signal received; draining and shutting down (again to force-quit)", "signal", s)
			// Restore default disposition: a second signal during a slow
			// drain must kill the process, not be swallowed.
			signal.Stop(sig)
			stop()
			cmd.ln.Close() // unblocks hs.Serve
		case <-stopping:
		}
	}()
	if cmd.leader != nil {
		go serveReplication(cmd.log, cmd.leader, cmd.replLn)
	}
	if cmd.follower != nil {
		if cmd.lease != nil {
			go cmd.promoteLoop(stopping)
			cmd.log.Info("following; serving reads", "leader", cmd.fopts.Addr, "addr", cmd.ln.Addr(), "promotes", "on lease expiry")
		} else {
			cmd.log.Info("following; serving reads", "leader", cmd.fopts.Addr, "addr", cmd.ln.Addr())
		}
	} else {
		cmd.log.Info("serving", "addr", cmd.ln.Addr())
	}
	// ReadHeaderTimeout bounds a client that connects and never finishes its
	// headers (slowloris); IdleTimeout reclaims parked keep-alive
	// connections. Request bodies and long ?wait= responses stay unbounded —
	// those waits are cancelled per request by the client hanging up.
	hs := &http.Server{
		Handler:           cmd.api,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	err = hs.Serve(cmd.ln)
	select {
	case <-stopping:
		cmd.shutdown() // graceful: drain + final checkpoint
		return nil
	default:
		stop()
		return err
	}
}

// runUpdates replays an update stream through an incremental session.
func runUpdates(args []string) error {
	fs := flag.NewFlagSet("tsens updates", flag.ContinueOnError)
	var (
		dataDir   = fs.String("data", "", "directory of <Relation>.csv files")
		queryText = fs.String("query", "", `query body, e.g. "R1(A,B), R2(B,C)"`)
		stream    = fs.String("stream", "", "update stream file (default <data>/"+csvio.UpdatesFileName+")")
		bagsSpec  = fs.String("bags", "", `GHD bags for cyclic queries, e.g. "0,1;2"`)
		skip      = fs.String("skip", "", "comma-separated relations to skip")
		batch     = fs.Int("batch", 1, "updates per batch (reports after each batch)")
		bulk      = fs.Int("bulk-threshold", 0, "batch size triggering full rebuild (0 = default, <0 = never)")
		parN      = fs.Int("parallelism", 0, "parallelism for open/rebuild (0 = all cores)")
		every     = fs.Int("every", 1, "print every k-th batch report")
		verify    = fs.Bool("verify", false, "cross-check the final state against a from-scratch solve")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dataDir == "" || *queryText == "" {
		fs.Usage()
		return usagef("-data and -query are required")
	}
	if *batch < 1 {
		return usagef("-batch must be at least 1")
	}
	if *every < 1 {
		return usagef("-every must be at least 1")
	}
	if *stream == "" {
		*stream = filepath.Join(*dataDir, csvio.UpdatesFileName)
	}

	loader := csvio.NewLoader()
	db, err := loader.LoadDir(*dataDir)
	if err != nil {
		return err
	}
	ups, err := loader.LoadUpdates(*stream)
	if err != nil {
		return err
	}
	q, err := parser.Parse("q", *queryText)
	if err != nil {
		return err
	}
	copts := core.Options{Parallelism: *parN}
	if *skip != "" {
		copts.SkipRelations = strings.Split(*skip, ",")
	}
	if *bagsSpec != "" {
		bags, err := parseBags(*bagsSpec)
		if err != nil {
			return err
		}
		copts.Decomposition, err = ghd.FromBags(q, bags)
		if err != nil {
			return err
		}
	} else if !query.IsAcyclic(q.Atoms) {
		d, err := ghd.Search(q, 0)
		if err != nil {
			return fmt.Errorf("query is cyclic and no -bags given; automatic search failed: %w", err)
		}
		copts.Decomposition = d
		fmt.Printf("query is cyclic; using searched GHD bags %v\n", d.Bags)
	}

	sess, err := incremental.Open(q, db, incremental.Options{Options: copts, BulkThreshold: *bulk})
	if err != nil {
		return err
	}
	fmt.Printf("query            : %s\n", q)
	fmt.Printf("opened session   : %d tuples, |Q(D)| = %d\n", db.Size(), sess.Count())
	batches := 0
	for off := 0; off < len(ups); off += *batch {
		end := off + *batch
		if end > len(ups) {
			end = len(ups)
		}
		if err := sess.Apply(ups[off:end]); err != nil {
			return fmt.Errorf("update %d: %w", off, err)
		}
		batches++
		if batches%*every != 0 && end != len(ups) {
			continue
		}
		res, err := sess.LS()
		if err != nil {
			return err
		}
		fmt.Printf("after %6d updates: |Q(D)| = %-12d LS = %d\n", end, res.Count, res.LS)
	}
	fmt.Printf("replayed %d updates in %d batches (%d full rebuilds)\n", len(ups), batches, sess.Rebuilds())
	if *verify {
		cur, err := relationDatabaseFromSession(sess, db)
		if err != nil {
			return err
		}
		want, err := core.LocalSensitivity(q, cur, copts)
		if err != nil {
			return err
		}
		res, err := sess.LS()
		if err != nil {
			return err
		}
		ok := res.LS == want.LS && res.Count == want.Count
		fmt.Printf("verify           : scratch |Q(D)| = %d LS = %d (agrees: %v)\n", want.Count, want.LS, ok)
		if !ok {
			return fmt.Errorf("session diverged from from-scratch solve")
		}
	}
	return nil
}

// relationDatabaseFromSession rebuilds a plain database from the session's
// current rows for the -verify cross-check.
func relationDatabaseFromSession(sess *incremental.Session, orig *relation.Database) (*relation.Database, error) {
	var rels []*relation.Relation
	for _, name := range orig.Names() {
		attrs := orig.Relation(name).Attrs
		rows := sess.Rows(name)
		cp := make([]relation.Tuple, len(rows))
		for i, t := range rows {
			cp[i] = t.Clone()
		}
		r, err := relation.New(name, attrs, cp)
		if err != nil {
			return nil, err
		}
		rels = append(rels, r)
	}
	return relation.NewDatabase(rels...)
}

func run(args []string) error {
	fs := flag.NewFlagSet("tsens", flag.ContinueOnError)
	var (
		dataDir   = fs.String("data", "", "directory of <Relation>.csv files")
		queryText = fs.String("query", "", `query body, e.g. "R1(A,B), R2(B,C) where R2.C >= 5"`)
		bagsSpec  = fs.String("bags", "", `GHD bags for cyclic queries: atom indexes, ";"-separated bags, e.g. "0,1;2"`)
		skip      = fs.String("skip", "", "comma-separated relations to skip (known tuple sensitivity ≤ 1)")
		topK      = fs.Int("topk", 0, "top-k approximation of top/botjoins (0 = exact)")
		naive     = fs.Bool("naive", false, "also run the naive Theorem 3.1 oracle (slow; small data only)")
		showElas  = fs.Bool("elastic", false, "also report the elastic-sensitivity upper bound")
		perRel    = fs.Bool("per-relation", false, "print the most sensitive tuple of every relation")
		downward  = fs.Bool("downward", false, "also report the deletion-only (downward) local sensitivity")
		explain   = fs.Bool("explain", false, "print the join tree (or GHD bag tree) the algorithm runs on")
		tupleSpec = fs.String("tuple", "", `evaluate δ of one tuple: "Relation:v1,v2,..." (values as in the CSVs)`)
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dataDir == "" || *queryText == "" {
		fs.Usage()
		return usagef("-data and -query are required")
	}

	loader := csvio.NewLoader()
	db, err := loader.LoadDir(*dataDir)
	if err != nil {
		return err
	}
	q, err := parser.Parse("q", *queryText)
	if err != nil {
		return err
	}

	opts := core.Options{TopK: *topK}
	if *skip != "" {
		opts.SkipRelations = strings.Split(*skip, ",")
	}
	if *bagsSpec != "" {
		bags, err := parseBags(*bagsSpec)
		if err != nil {
			return err
		}
		opts.Decomposition, err = ghd.FromBags(q, bags)
		if err != nil {
			return err
		}
	} else if !query.IsAcyclic(q.Atoms) {
		d, err := ghd.Search(q, 0)
		if err != nil {
			return fmt.Errorf("query is cyclic and no -bags given; automatic search failed: %w", err)
		}
		opts.Decomposition = d
		fmt.Printf("query is cyclic; using searched GHD bags %v\n", d.Bags)
	}

	if *explain {
		atoms := q.Atoms
		if opts.Decomposition != nil {
			atoms = opts.Decomposition.BagAtoms(q)
		}
		tree, err := query.BuildJoinTree(atoms)
		if err != nil {
			return err
		}
		fmt.Println("join tree:")
		fmt.Print(tree.Render())
		fmt.Printf("doubly acyclic: %v\n\n", tree.IsDoublyAcyclic())
	}

	res, err := core.LocalSensitivity(q, db, opts)
	if err != nil {
		return err
	}
	fmt.Printf("query            : %s\n", q)
	fmt.Printf("|Q(D)|           : %d\n", res.Count)
	fmt.Printf("local sensitivity: %d%s\n", res.LS, approxMark(res.Approximate))
	fmt.Printf("doubly acyclic   : %v (max join-tree degree %d)\n", res.DoublyAcyclic, res.MaxDegree)
	if res.Best != nil {
		fmt.Printf("most sensitive   : %s\n", renderTuple(loader, res.Best))
	}
	if *perRel {
		fmt.Println("\nper-relation most sensitive tuples:")
		for _, a := range q.Atoms {
			tr, ok := res.PerRelation[a.Relation]
			if !ok {
				fmt.Printf("  %-12s skipped\n", a.Relation)
				continue
			}
			fmt.Printf("  %-12s δ=%-8d %s\n", a.Relation, tr.Sensitivity, renderTuple(loader, tr))
		}
	}
	if *showElas {
		an, err := elastic.NewAnalyzer(q, db)
		if err != nil {
			return err
		}
		bound, err := an.LocalSensitivity(elastic.DefaultOrder(q))
		if err != nil {
			return err
		}
		fmt.Printf("elastic bound    : %d\n", bound)
	}
	if *naive {
		nres, err := core.NaiveLocalSensitivity(q, db, core.NaiveOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("naive oracle     : %d (agrees: %v)\n", nres.LS, nres.LS == res.LS)
	}
	if *downward {
		dres, err := core.DownwardLocalSensitivity(q, db, opts)
		if err != nil {
			return err
		}
		fmt.Printf("downward LS      : %d", dres.LS)
		if dres.Best != nil && dres.Best.Values != nil {
			fmt.Printf("  via %s", renderTuple(loader, dres.Best))
		}
		fmt.Println()
	}
	if *tupleSpec != "" {
		rel, vals, err := parseTuple(loader, *tupleSpec)
		if err != nil {
			return err
		}
		fn, err := core.TupleSensitivities(q, db, rel, opts)
		if err != nil {
			return err
		}
		fmt.Printf("δ(%s) = %d\n", *tupleSpec, fn(vals))
	}
	return nil
}

// parseTuple decodes "Relation:v1,v2,..." with the loader's dictionary, so
// string values written in the CSVs resolve to the same codes.
func parseTuple(loader *csvio.Loader, spec string) (string, relation.Tuple, error) {
	colon := strings.Index(spec, ":")
	if colon < 0 {
		return "", nil, fmt.Errorf(`-tuple must be "Relation:v1,v2,..."`)
	}
	rel := strings.TrimSpace(spec[:colon])
	var vals relation.Tuple
	for _, f := range strings.Split(spec[colon+1:], ",") {
		v, err := loader.Encode(strings.TrimSpace(f))
		if err != nil {
			return "", nil, err
		}
		vals = append(vals, v)
	}
	return rel, vals, nil
}

func approxMark(approx bool) string {
	if approx {
		return " (upper bound: top-k approximation)"
	}
	return ""
}

func renderTuple(loader *csvio.Loader, tr *core.TupleResult) string {
	if tr.Values == nil {
		return fmt.Sprintf("%s: none (sensitivity 0)", tr.Relation)
	}
	parts := make([]string, len(tr.Vars))
	for i := range tr.Vars {
		if tr.Wildcard[i] {
			parts[i] = fmt.Sprintf("%s=*", tr.Vars[i])
		} else {
			parts[i] = fmt.Sprintf("%s=%s", tr.Vars[i], loader.Decode(tr.Values[i]))
		}
	}
	mode := "insert"
	if tr.InDatabase {
		mode = "in database (delete or insert)"
	}
	return fmt.Sprintf("%s(%s)  δ=%d  [%s]", tr.Relation, strings.Join(parts, ", "), tr.Sensitivity, mode)
}

// parsePartition parses the -partition spec ("R1=1,R2=0") into the routing
// columns the sharded write path hashes on.
func parsePartition(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, field := range strings.Split(spec, ",") {
		rel, colText, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || rel == "" {
			return nil, fmt.Errorf(`-partition: field %q is not "Relation=column"`, field)
		}
		col, err := strconv.Atoi(colText)
		if err != nil {
			return nil, fmt.Errorf("-partition: column of %q: %w", rel, err)
		}
		if _, dup := out[rel]; dup {
			return nil, fmt.Errorf("-partition: relation %q listed twice", rel)
		}
		out[rel] = col
	}
	return out, nil
}

func parseBags(spec string) ([][]int, error) {
	var bags [][]int
	for _, bagStr := range strings.Split(spec, ";") {
		var bag []int
		for _, f := range strings.Split(bagStr, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("bad atom index %q in -bags", f)
			}
			bag = append(bag, v)
		}
		if len(bag) > 0 {
			bags = append(bags, bag)
		}
	}
	return bags, nil
}
