// The bench subcommand runs a fixed scenario suite and emits one
// schema-stable JSON document per run, the unit of the cross-PR benchmark
// trajectory: scripts/bench_trajectory.sh invokes it on every PR and the
// BENCH_<date>.json artifacts line up key-for-key, so a regression shows as
// a number moving, never as a schema diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tsens/internal/core"
	"tsens/internal/incremental"
	"tsens/internal/obs"
	"tsens/internal/relation"
	"tsens/internal/serve"
	"tsens/internal/workload"
)

// benchSchema identifies the JSON layout. Bump only when a key is added,
// removed, or renamed — rerunning the same binary must reproduce the exact
// same key set.
const benchSchema = "tsens-bench/v3" // v3: adds the serve_many_queries sharing sweep

const benchSeed = 20200409 // arXiv date of the paper, as in bench_test.go

type benchReport struct {
	Schema     string         `json:"schema"`
	Date       string         `json:"date"`
	Go         string         `json:"go"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Fast       bool           `json:"fast"`
	Benchmarks []benchEntry   `json:"benchmarks"`
	Serve      benchServeStat `json:"serve"`
	// ServeMany is the multi-query sharing sweep: per-update drain cost
	// with 1/16/128 heavily overlapping registered queries. With the
	// shared subplan DAG, the per-update cost at 128 queries must stay far
	// below 128× the 1-query cost.
	ServeMany []benchManyStat `json:"serve_many_queries"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchServeStat is the live-server scenario: sustained LS reads against a
// server draining a background update stream, with the latency percentiles
// pulled from the same obs registry /metrics would serve.
type benchServeStat struct {
	ReadsPerSec   float64 `json:"reads_per_sec"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	UpdateP50Ms   float64 `json:"update_p50_ms"`
	UpdateP90Ms   float64 `json:"update_p90_ms"`
	UpdateP99Ms   float64 `json:"update_p99_ms"`
	DrainP50Ms    float64 `json:"drain_round_p50_ms"`
	DrainP99Ms    float64 `json:"drain_round_p99_ms"`
	ShardEpochMin float64 `json:"shard_epoch_min"`
	RingDepthMax  float64 `json:"ring_depth_max"`
}

// benchManyStat is one point of the sharing sweep: the steady-state drain
// cost of one update with Queries registered (the four Facebook queries,
// cycled, so sharing kicks in from 5 registrations up), and the shared-node
// count the plan stores reported at the end of the run.
type benchManyStat struct {
	Queries             int     `json:"queries"`
	NsPerUpdate         float64 `json:"ns_per_update"`
	NsPerUpdatePerQuery float64 `json:"ns_per_update_per_query"`
	PlanNodesShared     float64 `json:"plan_nodes_shared"`
}

// runBench executes the suite and writes the report. The scenario sizes are
// fixed per mode (-fast for CI, full otherwise) so numbers are comparable
// across runs of the same mode; the JSON key set is identical in both.
func runBench(args []string) error {
	fs := flag.NewFlagSet("tsens bench", flag.ContinueOnError)
	var (
		out  = fs.String("out", "", `output file (default "BENCH_<date>.json"; "-" for stdout)`)
		fast = fs.Bool("fast", false, "CI-sized fixtures (seconds, not minutes)")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	now := time.Now().UTC()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	}

	nodes, edges, circles, streamN := 120, 1200, 250, 8192
	if *fast {
		nodes, edges, circles, streamN = 60, 400, 80, 2048
	}
	fmt.Fprintf(os.Stderr, "bench: generating fixture (%d nodes, %d edges)\n", nodes, edges)
	db := workload.FacebookDataSized(nodes, edges, circles, benchSeed)
	specs := workload.Facebook()

	report := benchReport{
		Schema:     benchSchema,
		Date:       now.Format(time.RFC3339),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Fast:       *fast,
	}

	// From-scratch solves and single-update session maintenance, one pair
	// per workload query, via the stdlib benchmark harness (auto-scaled N).
	for _, s := range specs {
		spec := s
		fmt.Fprintf(os.Stderr, "bench: ls_scratch/%s\n", spec.Name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.LocalSensitivity(spec.Query, db, spec.Options()); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks, toEntry("ls_scratch/"+spec.Name, r))

		fmt.Fprintf(os.Stderr, "bench: session_update/%s\n", spec.Name)
		row := db.Relation(spec.PrimaryPrivate).Rows[0].Clone()
		sess, err := incremental.Open(spec.Query, db, incremental.Options{Options: spec.Options()})
		if err != nil {
			return err
		}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					err = sess.Insert(spec.PrimaryPrivate, row)
				} else {
					err = sess.Delete(spec.PrimaryPrivate, row)
				}
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.LS(); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks, toEntry("session_update/"+spec.Name, r))
	}

	fmt.Fprintf(os.Stderr, "bench: serve_throughput (%d-update stream)\n", streamN)
	st, err := benchServe(db, streamN)
	if err != nil {
		return err
	}
	report.Serve = st

	for _, nq := range []int{1, 16, 128} {
		fmt.Fprintf(os.Stderr, "bench: serve_many_queries (%d queries)\n", nq)
		ms, err := benchManyQueries(db, nq, streamN)
		if err != nil {
			return err
		}
		report.ServeMany = append(report.ServeMany, ms)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s\n", *out)
	return nil
}

func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(max(r.N, 1)),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// benchManyQueries drains a pre-generated update stream through a server
// with nq heavily overlapping registered queries (the four Facebook
// queries, cycled — byte-identical copies share one hash-consed plan per
// shard) and reports the steady-state per-update cost.
func benchManyQueries(db *relation.Database, nq, streamN int) (benchManyStat, error) {
	reg := obs.NewRegistry()
	stream := workload.UpdateStream(db, streamN, 0.4, benchSeed)
	srv, err := serve.New(db, serve.Options{Metrics: reg})
	if err != nil {
		return benchManyStat{}, err
	}
	defer srv.Close()
	specs := workload.Facebook()
	for i := 0; i < nq; i++ {
		s := specs[i%len(specs)]
		q := serve.QueryConfig{ID: fmt.Sprintf("%s#%d", s.Name, i), Query: s.Query, Options: s.Options()}
		if _, _, err := srv.Register(q); err != nil {
			return benchManyStat{}, err
		}
	}
	var applied int
	r := testing.Benchmark(func(b *testing.B) {
		for done, off := 0, 0; done < b.N; {
			end := off + 64
			if end > len(stream) {
				end = len(stream)
			}
			if rem := b.N - done; end-off > rem {
				end = off + rem
			}
			// Wrapping replays the stream; stale deletes are skipped.
			if _, _, err := srv.Append(stream[off:end]); err != nil {
				b.Fatal(err)
			}
			done += end - off
			off = end % len(stream)
			if st := srv.Stats(); st.Appended-st.Epoch > 512 {
				if err := srv.WaitApplied(st.Appended); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := srv.WaitApplied(srv.Stats().Appended); err != nil {
			b.Fatal(err)
		}
		applied = b.N
	})
	st := benchManyStat{Queries: nq}
	if applied > 0 {
		st.NsPerUpdate = float64(r.T.Nanoseconds()) / float64(applied)
		st.NsPerUpdatePerQuery = st.NsPerUpdate / float64(nq)
	}
	if v, ok := reg.Value("tsens_plan_nodes_shared"); ok {
		st.PlanNodesShared = v
	}
	return st, nil
}

// benchServe measures sustained reader throughput against a live server
// while a background goroutine feeds the update log, then reads the update
// and drain-round latency percentiles off the server's metrics registry —
// the same numbers a /metrics scrape of a production process reports.
func benchServe(db *relation.Database, streamN int) (benchServeStat, error) {
	reg := obs.NewRegistry()
	stream := workload.UpdateStream(db, streamN, 0.4, benchSeed)
	srv, err := serve.New(db, serve.Options{Metrics: reg})
	if err != nil {
		return benchServeStat{}, err
	}
	defer srv.Close()
	var ids []string
	for _, s := range workload.Facebook() {
		id, _, err := srv.Register(serve.QueryConfig{ID: s.Name, Query: s.Query, Options: s.Options()})
		if err != nil {
			return benchServeStat{}, err
		}
		ids = append(ids, id)
	}
	stop := make(chan struct{})
	feederDone := make(chan struct{})
	var feedErr error
	go func() {
		// Backpressure bounds the backlog so a steady state is measured,
		// not an unbounded queue (same discipline as BenchmarkServeThroughput).
		defer close(feederDone)
		const chunk = 16
		for off := 0; ; off = (off + chunk) % len(stream) {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st := srv.Stats(); st.Appended-st.Epoch <= 512 {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			if _, _, err := srv.Append(stream[off:end]); err != nil {
				feedErr = err
				return
			}
		}
	}()
	startEpoch := srv.Epoch()
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := srv.LS(ids[i%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	elapsed := r.T.Seconds()
	close(stop)
	<-feederDone
	if feedErr != nil {
		return benchServeStat{}, feedErr
	}
	st := benchServeStat{}
	if elapsed > 0 {
		st.ReadsPerSec = float64(r.N) / elapsed
		st.UpdatesPerSec = float64(srv.Epoch()-startEpoch) / elapsed
	}
	ms := func(sample string) float64 {
		v, _ := reg.Value(sample)
		return v * 1000
	}
	st.UpdateP50Ms = ms("tsens_session_update_seconds_p50")
	st.UpdateP90Ms = ms("tsens_session_update_seconds_p90")
	st.UpdateP99Ms = ms("tsens_session_update_seconds_p99")
	st.DrainP50Ms = ms("tsens_serve_drain_round_seconds_p50")
	st.DrainP99Ms = ms("tsens_serve_drain_round_seconds_p99")
	// Settle the drain so the per-shard gauges read at rest: every
	// watermark equals the appended frontier and the rings hold the final
	// stamp, making the minimum deterministic instead of a mid-drain race.
	if err := srv.WaitApplied(srv.Stats().Appended); err != nil {
		return benchServeStat{}, err
	}
	for i := 0; i < srv.NumShards(); i++ {
		if e, ok := reg.Value(fmt.Sprintf(`tsens_shard_epoch{shard="%d"}`, i)); ok {
			if i == 0 || e < st.ShardEpochMin {
				st.ShardEpochMin = e
			}
		}
		if d, ok := reg.Value(fmt.Sprintf(`tsens_serve_ring_depth{shard="%d"}`, i)); ok && d > st.RingDepthMax {
			st.RingDepthMax = d
		}
	}
	return st, nil
}
