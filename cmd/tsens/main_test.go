package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"reflect"
	"strings"
	"testing"
	"time"

	"tsens/internal/core"
	"tsens/internal/csvio"
	"tsens/internal/parser"
	"tsens/internal/relation"
)

func TestParseBags(t *testing.T) {
	bags, err := parseBags("0,1;2;3,4")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2}, {3, 4}}
	if !reflect.DeepEqual(bags, want) {
		t.Fatalf("parseBags=%v", bags)
	}
	if _, err := parseBags("0,x"); err == nil {
		t.Fatal("bad index accepted")
	}
	bags, err = parseBags("0, 1 ; 2")
	if err != nil || len(bags) != 2 {
		t.Fatalf("whitespace handling: %v %v", bags, err)
	}
}

func TestParseTuple(t *testing.T) {
	loader := csvio.NewLoader()
	rel, vals, err := parseTuple(loader, "R2:1,foo")
	if err != nil {
		t.Fatal(err)
	}
	if rel != "R2" || len(vals) != 2 || vals[0] != 1 {
		t.Fatalf("parseTuple=(%s,%v)", rel, vals)
	}
	// The string must land on the same dictionary code as loading would.
	code, _ := loader.Encode("foo")
	if vals[1] != code {
		t.Fatal("string value encoded inconsistently")
	}
	if _, _, err := parseTuple(loader, "no-colon"); err == nil {
		t.Fatal("missing colon accepted")
	}
}

func TestRenderTuple(t *testing.T) {
	loader := csvio.NewLoader()
	tr := &core.TupleResult{
		Relation:    "R1",
		Vars:        []string{"A", "B"},
		Values:      relation.Tuple{1, 2},
		Wildcard:    []bool{false, true},
		Sensitivity: 7,
		InDatabase:  true,
	}
	s := renderTuple(loader, tr)
	if s == "" {
		t.Fatal("empty rendering")
	}
	empty := &core.TupleResult{Relation: "R1"}
	if renderTuple(loader, empty) == "" {
		t.Fatal("empty tuple rendering")
	}
}

func TestApproxMark(t *testing.T) {
	if approxMark(false) != "" || approxMark(true) == "" {
		t.Fatal("approxMark wrong")
	}
}

// TestBuildServe assembles the serve subcommand against a tiny CSV snapshot
// and drives the HTTP handler end to end: startup query registration,
// stream replay through the update log, and an LS read that must match the
// one-shot solver on the replayed state.
func TestBuildServe(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("R1.csv", "a,b\n1,1\n1,2\n2,2\n")
	writeFile("R2.csv", "b,c\n1,x\n2,x\n2,y\n")
	writeFile("updates.stream", "+,R2,2,x\n-,R1,1,1\n")

	cmd, err := buildServe([]string{
		"-data", dir,
		"-addr", "127.0.0.1:0",
		"-query", "R1(A,B), R2(B,C)",
		"-id", "demo",
		"-replay", filepath.Join(dir, "updates.stream"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cmd.srv.Close()
	defer cmd.ln.Close()
	if cmd.replay == nil {
		t.Fatal("replay not configured")
	}
	if err := cmd.replay(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.srv.WaitApplied(2); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(cmd.api)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/queries/demo/ls")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ls struct {
		Epoch int64 `json:"epoch"`
		Count int64 `json:"count"`
		LS    int64 `json:"ls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}

	// From-scratch cross-check on the replayed state.
	loader := csvio.NewLoader()
	db, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := loader.Encode("x")
	r2 := db.Relation("R2")
	r2.Rows = append(r2.Rows, relation.Tuple{2, x})
	r1 := db.Relation("R1")
	for i, row := range r1.Rows {
		if row.Equal(relation.Tuple{1, 1}) {
			r1.Rows = append(r1.Rows[:i], r1.Rows[i+1:]...)
			break
		}
	}
	q, err := parser.Parse("demo", "R1(A,B), R2(B,C)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.LocalSensitivity(q, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Epoch != 2 || ls.Count != want.Count || ls.LS != want.LS {
		t.Fatalf("served (epoch %d: %d, %d), scratch (%d, %d)", ls.Epoch, ls.Count, ls.LS, want.Count, want.LS)
	}
}

func TestParsePartition(t *testing.T) {
	got, err := parsePartition("R1=1, R2=0")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, map[string]int{"R1": 1, "R2": 0}) {
		t.Fatalf("parsePartition: %v", got)
	}
	if got, err := parsePartition(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"R1", "R1=x", "=1", "R1=1,R1=2"} {
		if _, err := parsePartition(bad); err == nil {
			t.Fatalf("bad spec %q accepted", bad)
		}
	}
}

// TestBuildServeSharded starts the CLI server with an explicit shard count
// and aligned routing columns, so the startup query is maintained as one
// sub-session per shard, and checks the /epoch shard fields.
func TestBuildServeSharded(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("R1.csv", "a,b\n1,1\n1,2\n2,2\n3,1\n")
	writeFile("R2.csv", "b,c\n1,4\n2,4\n2,5\n1,6\n")

	cmd, err := buildServe([]string{
		"-data", dir,
		"-addr", "127.0.0.1:0",
		"-query", "R1(A,B), R2(B,C)",
		"-id", "demo",
		"-shards", "2",
		"-partition", "R1=1,R2=0", // align both atoms on the join variable B
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cmd.srv.Close()
	defer cmd.ln.Close()
	if got := cmd.srv.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want 2", got)
	}
	if infos := cmd.srv.Queries(); len(infos) != 1 || infos[0].Parts != 2 {
		t.Fatalf("startup query not partitioned: %+v", infos)
	}

	ts := httptest.NewServer(cmd.api)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/epoch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ep struct {
		Shards     int     `json:"shards"`
		Watermarks []int64 `json:"watermarks"`
		Joined     int64   `json:"joined"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil {
		t.Fatal(err)
	}
	if ep.Shards != 2 || len(ep.Watermarks) != 2 {
		t.Fatalf("/epoch shard fields: %+v", ep)
	}

	// A bad partition spec fails at startup, not at first update.
	if _, err := buildServe([]string{"-data", dir, "-addr", "127.0.0.1:0", "-partition", "R1=9"}); err == nil {
		t.Fatal("out-of-range partition column accepted")
	}
}

func TestBuildServeValidation(t *testing.T) {
	if _, err := buildServe([]string{"-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing -data accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "R1.csv"), []byte("a,b\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildServe([]string{"-data", dir, "-addr", "127.0.0.1:0", "-query", "R9(A,"}); err == nil {
		t.Fatal("malformed startup query accepted")
	}
}

// TestExitCodes pins the unified exit-code contract: usage errors (bad or
// missing flags, any subcommand) exit 2, runtime failures exit 1, -h exits
// 0. Before the unification, subcommand flag errors exited 2 via
// flag.ExitOnError while every top-level error exited 1.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "R1.csv"), []byte("a,b\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A plain file: using it as a -wal parent fails with ENOTDIR even when
	// the test runs as root (permission bits would not be enforced then).
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"top-level bad flag", []string{"-no-such-flag"}, 2},
		{"top-level missing required", []string{"-data", dir}, 2},
		{"top-level runtime error", []string{"-data", filepath.Join(dir, "missing"), "-query", "R1(A,B)"}, 1},
		{"top-level bad query", []string{"-data", dir, "-query", "R1(A,"}, 1},
		{"updates bad flag", []string{"updates", "-bogus"}, 2},
		{"updates missing required", []string{"updates", "-data", dir}, 2},
		{"updates bad batch", []string{"updates", "-data", dir, "-query", "R1(A,B)", "-batch", "0"}, 2},
		{"updates runtime error", []string{"updates", "-data", dir, "-query", "R1(A,B)"}, 1}, // no updates.stream
		{"serve bad flag", []string{"serve", "-nope"}, 2},
		{"serve bad log level", []string{"serve", "-data", dir, "-addr", "127.0.0.1:0", "-log-level", "loud"}, 2},
		{"serve negative slow-ms", []string{"serve", "-data", dir, "-addr", "127.0.0.1:0", "-slow-ms", "-5"}, 2},
		{"serve missing data and wal", []string{"serve", "-addr", "127.0.0.1:0"}, 2},
		{"serve unwritable wal dir", []string{"serve", "-addr", "127.0.0.1:0", "-data", dir,
			"-wal", filepath.Join(blocker, "wal")}, 1},
		{"serve wal without data or state", []string{"serve", "-addr", "127.0.0.1:0",
			"-wal", filepath.Join(dir, "emptywal")}, 1},
		{"top-level help", []string{"-h"}, 0},
		{"updates help", []string{"updates", "-h"}, 0},
		{"serve help", []string{"serve", "-h"}, 0},
	}
	for _, c := range cases {
		if got := realMain(c.args); got != c.want {
			t.Errorf("%s: exit %d, want %d (args %v)", c.name, got, c.want, c.args)
		}
	}
}

// TestBuildServeWALRestart drives the CLI assembly through a full restart:
// first boot registers the startup query and absorbs updates, a graceful
// close checkpoints, and the second boot with identical flags recovers the
// query at the same epoch instead of double-registering it.
func TestBuildServeWALRestart(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("R1.csv", "a,b\n1,1\n1,2\n2,2\n")
	writeFile("R2.csv", "b,c\n1,x\n2,x\n2,y\n")
	writeFile("updates.stream", "+,R2,2,x\n-,R1,1,1\n+,R1,3,1\n")
	walDir := filepath.Join(dir, "wal")

	args := []string{
		"-data", dir,
		"-addr", "127.0.0.1:0",
		"-query", "R1(A,B), R2(B,C)",
		"-id", "demo",
		"-wal", walDir,
	}
	cmd, err := buildServe(append([]string{"-replay", filepath.Join(dir, "updates.stream")}, args...))
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.replay(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.srv.WaitApplied(3); err != nil {
		t.Fatal(err)
	}
	before, err := cmd.srv.View("demo")
	if err != nil {
		t.Fatal(err)
	}
	cmd.ln.Close()
	cmd.srv.Close() // graceful: final checkpoint

	re, err := buildServe(args) // same flags, no -replay: must recover, not re-register
	if err != nil {
		t.Fatal(err)
	}
	defer re.srv.Close()
	defer re.ln.Close()
	after, err := re.srv.View("demo")
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch || after.Count != before.Count || after.LS.LS != before.LS.LS {
		t.Fatalf("recovered view (epoch %d: %d, %d), want (epoch %d: %d, %d)",
			after.Epoch, after.Count, after.LS.LS, before.Epoch, before.Count, before.LS.LS)
	}
	if infos := re.srv.Queries(); len(infos) != 1 {
		t.Fatalf("recovered %d queries, want 1: %+v", len(infos), infos)
	}
	if st := re.srv.Stats(); !st.WAL || st.Epoch != 3 {
		t.Fatalf("recovered stats %+v, want WAL at epoch 3", st)
	}
	re.ln.Close()
	re.srv.Close()

	// Restarting with -replay still on the command line must NOT feed the
	// stream a second time (it is already journaled; re-appending would
	// double the database).
	re2, err := buildServe(append([]string{"-replay", filepath.Join(dir, "updates.stream")}, args...))
	if err != nil {
		t.Fatal(err)
	}
	defer re2.srv.Close()
	defer re2.ln.Close()
	if re2.replay != nil {
		t.Fatal("-replay not skipped on a recovering boot")
	}
	if v, err := re2.srv.View("demo"); err != nil || v.Epoch != 3 {
		t.Fatalf("view after second restart: %+v, %v", v, err)
	}

	// And restarting with the same -id but a DIFFERENT -query must fail
	// loudly instead of silently serving the old body under that id.
	bad := []string{"-data", dir, "-addr", "127.0.0.1:0", "-query", "R1(A,B)", "-id", "demo", "-wal", walDir}
	if _, err := buildServe(bad); err == nil {
		t.Fatal("changed -query under a recovered -id accepted")
	}
}

// TestServeReplicationFailover assembles a replicating leader and a
// follower through the real flag surface and drives the failover story end
// to end: the follower serves the leader's replicated reads and refuses
// writes with 503 + Retry-After, and when the leader goes away its lease
// lapses and the follower promotes itself into a serving leader that
// accepts writes.
func TestServeReplicationFailover(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("R1.csv", "a,b\n1,1\n1,2\n2,2\n")
	writeFile("R2.csv", "b,c\n1,x\n2,x\n2,y\n")
	lease := filepath.Join(dir, "lease")

	ld, err := buildServe([]string{
		"-data", dir,
		"-addr", "127.0.0.1:0",
		"-query", "R1(A,B), R2(B,C)",
		"-id", "demo",
		"-wal", filepath.Join(dir, "wal-leader"),
		"-replicate", "127.0.0.1:0",
		"-lease", lease,
		"-lease-ttl", "300ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.shutdown()
	defer ld.ln.Close()
	go serveReplication(ld.log, ld.leader, ld.replLn)

	fl, err := buildServe([]string{
		"-follow", ld.replLn.Addr().String(),
		"-addr", "127.0.0.1:0",
		"-wal", filepath.Join(dir, "wal-follower"),
		"-lease", lease,
		"-lease-ttl", "300ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.shutdown()
	defer fl.ln.Close()
	stopPromote := make(chan struct{})
	defer close(stopPromote)
	go fl.promoteLoop(stopPromote)

	lts := httptest.NewServer(ld.api)
	defer lts.Close()
	fts := httptest.NewServer(fl.api)
	defer fts.Close()

	post := func(url, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	type lsReply struct {
		Epoch int64 `json:"epoch"`
		Count int64 `json:"count"`
		LS    int64 `json:"ls"`
	}
	getLS := func(url string) (lsReply, int) {
		t.Helper()
		resp, err := http.Get(url + "/queries/demo/ls")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ls lsReply
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
				t.Fatal(err)
			}
		}
		return ls, resp.StatusCode
	}
	state := func(url string) string {
		t.Helper()
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rz struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
			t.Fatal(err)
		}
		return rz.State
	}

	// Write through the leader with read-your-writes, then the follower must
	// catch up to the identical answer.
	if resp := post(lts.URL+"/updates?wait=epoch", `{"updates":[{"op":"+","rel":"R2","row":["2","x"]}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader update: status %d", resp.StatusCode)
	}
	want, code := getLS(lts.URL)
	if code != http.StatusOK {
		t.Fatalf("leader ls: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, code := getLS(fts.URL)
		if code == http.StatusOK && got == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v (status %d), want %+v", got, code, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := state(fts.URL); st != "following" {
		t.Fatalf("follower /readyz state %q, want following", st)
	}

	// Writes and releases are leader-only on the follower.
	resp := post(fts.URL+"/updates", `{"updates":[{"op":"+","rel":"R2","row":["1","y"]}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("follower write: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// The leader shuts down gracefully, releasing the lease; the follower's
	// promote loop notices and takes over through the ordinary recovery.
	ld.shutdown()
	for {
		if st := state(fts.URL); st == "leading" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never promoted (state %q)", state(fts.URL))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp := post(fts.URL+"/updates?wait=epoch", `{"updates":[{"op":"+","rel":"R2","row":["1","y"]}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted write: status %d", resp.StatusCode)
	}
	got, code := getLS(fts.URL)
	if code != http.StatusOK || got.Epoch != want.Epoch+1 {
		t.Fatalf("promoted ls: %+v (status %d), want epoch %d", got, code, want.Epoch+1)
	}
}

// TestServeTraceAcrossReplication drives one traced update through a
// replicating leader and its follower and asserts the tracing layer's core
// promise: the leader's flight recorder holds the update's trace with every
// write-path stage, and the follower holds a replicated-update trace under
// the SAME trace ID with the mirror and apply stages — one request joined
// across two processes, the ID riding inside the shipped WAL record.
func TestServeTraceAcrossReplication(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("R1.csv", "a,b\n1,1\n1,2\n2,2\n")
	writeFile("R2.csv", "b,c\n1,x\n2,x\n2,y\n")

	ld, err := buildServe([]string{
		"-data", dir,
		"-addr", "127.0.0.1:0",
		"-query", "R1(A,B), R2(B,C)",
		"-id", "demo",
		"-wal", filepath.Join(dir, "wal-leader"),
		"-replicate", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.shutdown()
	defer ld.ln.Close()
	go serveReplication(ld.log, ld.leader, ld.replLn)

	fl, err := buildServe([]string{
		"-follow", ld.replLn.Addr().String(),
		"-addr", "127.0.0.1:0",
		"-wal", filepath.Join(dir, "wal-follower"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.shutdown()
	defer fl.ln.Close()

	lts := httptest.NewServer(ld.api)
	defer lts.Close()
	fts := httptest.NewServer(fl.api)
	defer fts.Close()

	resp, err := http.Post(lts.URL+"/updates?wait=epoch", "application/json",
		strings.NewReader(`{"updates":[{"op":"+","rel":"R2","row":["2","x"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack struct {
		Trace string `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ack.Trace == "" {
		t.Fatalf("update: status %d, trace %q", resp.StatusCode, ack.Trace)
	}

	// stagesOf fetches /debug/traces and returns the stage-name set of the
	// trace with the wanted name and ID, or nil while it has not appeared.
	stagesOf := func(url, name, id string) map[string]bool {
		t.Helper()
		resp, err := http.Get(url + "/debug/traces?name=" + name)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Traces []struct {
				ID     string `json:"id"`
				Stages []struct {
					Name string `json:"name"`
				} `json:"stages"`
			} `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		for _, tr := range out.Traces {
			if tr.ID != id {
				continue
			}
			stages := make(map[string]bool, len(tr.Stages))
			for _, st := range tr.Stages {
				stages[st.Name] = true
			}
			return stages
		}
		return nil
	}
	waitStages := func(url, name string, want []string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if stages := stagesOf(url, name, ack.Trace); stages != nil {
				for _, s := range want {
					if !stages[s] {
						t.Fatalf("%s trace %s: stage %q missing in %v", name, ack.Trace, s, stages)
					}
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s never appeared in %s/debug/traces?name=%s", ack.Trace, url, name)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The leader finishes the trace when the last shard drains the round
	// (async epochs: per-shard drains replace the coordinated patch/publish
	// stages); the follower records its half when the shipped record applies.
	waitStages(lts.URL, "update", []string{"ingress", "shard-route", "wal-append", "drain", "shard-drain"})
	waitStages(fts.URL, "replicated-update", []string{"mirror", "apply"})
}
