package main

import (
	"reflect"
	"testing"

	"tsens/internal/core"
	"tsens/internal/csvio"
	"tsens/internal/relation"
)

func TestParseBags(t *testing.T) {
	bags, err := parseBags("0,1;2;3,4")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2}, {3, 4}}
	if !reflect.DeepEqual(bags, want) {
		t.Fatalf("parseBags=%v", bags)
	}
	if _, err := parseBags("0,x"); err == nil {
		t.Fatal("bad index accepted")
	}
	bags, err = parseBags("0, 1 ; 2")
	if err != nil || len(bags) != 2 {
		t.Fatalf("whitespace handling: %v %v", bags, err)
	}
}

func TestParseTuple(t *testing.T) {
	loader := csvio.NewLoader()
	rel, vals, err := parseTuple(loader, "R2:1,foo")
	if err != nil {
		t.Fatal(err)
	}
	if rel != "R2" || len(vals) != 2 || vals[0] != 1 {
		t.Fatalf("parseTuple=(%s,%v)", rel, vals)
	}
	// The string must land on the same dictionary code as loading would.
	code, _ := loader.Encode("foo")
	if vals[1] != code {
		t.Fatal("string value encoded inconsistently")
	}
	if _, _, err := parseTuple(loader, "no-colon"); err == nil {
		t.Fatal("missing colon accepted")
	}
}

func TestRenderTuple(t *testing.T) {
	loader := csvio.NewLoader()
	tr := &core.TupleResult{
		Relation:    "R1",
		Vars:        []string{"A", "B"},
		Values:      relation.Tuple{1, 2},
		Wildcard:    []bool{false, true},
		Sensitivity: 7,
		InDatabase:  true,
	}
	s := renderTuple(loader, tr)
	if s == "" {
		t.Fatal("empty rendering")
	}
	empty := &core.TupleResult{Relation: "R1"}
	if renderTuple(loader, empty) == "" {
		t.Fatal("empty tuple rendering")
	}
}

func TestApproxMark(t *testing.T) {
	if approxMark(false) != "" || approxMark(true) == "" {
		t.Fatal("approxMark wrong")
	}
}
