// Command datagen emits the synthetic datasets of the evaluation as CSV
// directories: the TPC-H-like database (dbgen substitute) and the
// Facebook-ego-network-like database (SNAP substitute).
//
// Usage:
//
//	datagen -kind tpch -scale 0.001 -out ./tpch-0.001
//	datagen -kind facebook -nodes 225 -edges 3192 -circles 567 -out ./fb
package main

import (
	"flag"
	"fmt"
	"os"

	"tsens/internal/csvio"
	"tsens/internal/snapgen"
	"tsens/internal/tpch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "tpch", "dataset kind: tpch or facebook")
		out     = flag.String("out", "", "output directory for CSV files")
		seed    = flag.Int64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 0.001, "TPC-H scale factor")
		skew    = flag.Float64("skew", 0, "TPC-H: Zipf exponent for foreign keys (>1; 0 = uniform, like dbgen)")
		nodes   = flag.Int("nodes", 225, "facebook: node count")
		edges   = flag.Int("edges", 3192, "facebook: undirected edge count")
		circles = flag.Int("circles", 567, "facebook: circle count")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}

	loader := csvio.NewLoader()
	switch *kind {
	case "tpch":
		db := tpch.Generate(tpch.Config{Scale: *scale, Seed: *seed, Skew: *skew})
		if err := loader.SaveDatabase(db, *out); err != nil {
			return err
		}
		fmt.Printf("wrote TPC-H scale %g (%d tuples) to %s\n", *scale, db.Size(), *out)
	case "facebook":
		net := snapgen.Generate(snapgen.Config{Nodes: *nodes, Edges: *edges, Circles: *circles, Seed: *seed})
		if err := loader.SaveDatabase(net.DB, *out); err != nil {
			return err
		}
		fmt.Printf("wrote ego-network (%d nodes, %d edges, %d tuples) to %s\n",
			*nodes, *edges, net.DB.Size(), *out)
	default:
		return fmt.Errorf("unknown -kind %q (want tpch or facebook)", *kind)
	}
	return nil
}
