// Command datagen emits the synthetic datasets of the evaluation as CSV
// directories: the TPC-H-like database (dbgen substitute) and the
// Facebook-ego-network-like database (SNAP substitute). With -updates N it
// additionally writes updates.stream, a replayable single-tuple
// insert/delete stream against the snapshot, for the incremental session
// engine (tsens updates replays it).
//
// Usage:
//
//	datagen -kind tpch -scale 0.001 -out ./tpch-0.001
//	datagen -kind facebook -nodes 225 -edges 3192 -circles 567 -out ./fb
//	datagen -kind facebook -out ./fb -updates 1000 -update-del-frac 0.4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tsens/internal/csvio"
	"tsens/internal/relation"
	"tsens/internal/snapgen"
	"tsens/internal/tpch"
	"tsens/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "tpch", "dataset kind: tpch or facebook")
		out     = flag.String("out", "", "output directory for CSV files")
		seed    = flag.Int64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 0.001, "TPC-H scale factor")
		skew    = flag.Float64("skew", 0, "TPC-H: Zipf exponent for foreign keys (>1; 0 = uniform, like dbgen)")
		nodes   = flag.Int("nodes", 225, "facebook: node count")
		edges   = flag.Int("edges", 3192, "facebook: undirected edge count")
		circles = flag.Int("circles", 567, "facebook: circle count")
		updates = flag.Int("updates", 0, "also emit "+csvio.UpdatesFileName+" with this many replayable single-tuple updates")
		delFrac = flag.Float64("update-del-frac", 0.4, "fraction of deletes in the update stream")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}

	loader := csvio.NewLoader()
	var db *relation.Database
	switch *kind {
	case "tpch":
		db = tpch.Generate(tpch.Config{Scale: *scale, Seed: *seed, Skew: *skew})
		if err := loader.SaveDatabase(db, *out); err != nil {
			return err
		}
		fmt.Printf("wrote TPC-H scale %g (%d tuples) to %s\n", *scale, db.Size(), *out)
	case "facebook":
		net := snapgen.Generate(snapgen.Config{Nodes: *nodes, Edges: *edges, Circles: *circles, Seed: *seed})
		db = net.DB
		if err := loader.SaveDatabase(db, *out); err != nil {
			return err
		}
		fmt.Printf("wrote ego-network (%d nodes, %d edges, %d tuples) to %s\n",
			*nodes, *edges, db.Size(), *out)
	default:
		return fmt.Errorf("unknown -kind %q (want tpch or facebook)", *kind)
	}
	if *updates > 0 {
		stream := workload.UpdateStream(db, *updates, *delFrac, *seed+1)
		path := filepath.Join(*out, csvio.UpdatesFileName)
		if err := loader.SaveUpdates(stream, path); err != nil {
			return err
		}
		fmt.Printf("wrote %d updates (%.0f%% deletes) to %s\n", len(stream), *delFrac*100, path)
	}
	return nil
}
