// Command experiments regenerates the paper's evaluation artifacts
// (Section 7): Figures 6a, 6b, 7 and Tables 1, 2 plus the ℓ parameter
// study, printing each in the paper's layout.
//
// Usage:
//
//	experiments                       # everything at default sizes
//	experiments -only fig6a,table2    # a subset (also: selection, topk studies)
//	experiments -scales 0.0001,0.001,0.01 -runs 20 -seed 42
//
// Scales are TPC-H scale factors; q3 (the cyclic query) is capped at
// -maxq3 because its hypertree bags grow super-linearly, mirroring the
// paper's own memory cutoff.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tsens/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only      = flag.String("only", "", "comma list of artifacts: fig6a, fig6b, fig7, table1, table2, param, selection, topk (empty = all)")
		scalesStr = flag.String("scales", "", "TPC-H scales for fig6a/fig7 (default 0.0001,0.0003,0.001,0.003,0.01)")
		fig6bAt   = flag.Float64("fig6b-scale", 0.001, "TPC-H scale for fig6b")
		runs      = flag.Int("runs", 20, "repetitions per mechanism for table2/param")
		seed      = flag.Int64("seed", 42, "generator and mechanism seed")
		nodes     = flag.Int("fb-nodes", 120, "facebook nodes")
		edges     = flag.Int("fb-edges", 1200, "facebook undirected edges")
		circles   = flag.Int("fb-circles", 250, "facebook circles")
		tpchScale = flag.Float64("table2-scale", 0.001, "TPC-H scale for table2")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only == "" {
		for _, k := range []string{"fig6a", "fig6b", "fig7", "table1", "table2", "param", "selection", "topk"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	scales := experiments.DefaultTPCHScales
	if *scalesStr != "" {
		scales = nil
		for _, s := range strings.Split(*scalesStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad scale %q", s)
			}
			scales = append(scales, v)
		}
	}
	fbSize := experiments.FacebookSize{Nodes: *nodes, Edges: *edges, Circles: *circles}

	if want["fig6a"] || want["fig7"] {
		rows, err := experiments.Fig6a7(scales, *seed)
		if err != nil {
			return err
		}
		if want["fig6a"] {
			fmt.Println(experiments.RenderFig6a(rows))
		}
		if want["fig7"] {
			fmt.Println(experiments.RenderFig7(rows))
		}
	}
	if want["fig6b"] {
		rows, err := experiments.Fig6b(*fig6bAt, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig6b(rows, *fig6bAt))
	}
	if want["table1"] {
		rows, err := experiments.Table1(fbSize, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
	}
	if want["table2"] {
		rows, err := experiments.Table2(experiments.Table2Config{
			Runs: *runs, TPCHScale: *tpchScale, Facebook: fbSize, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(rows))
	}
	if want["param"] {
		rows, err := experiments.ParamStudy(nil, *runs, fbSize, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderParamStudy(rows))
	}
	if want["selection"] {
		rows, err := experiments.SelectionStudy(*tpchScale, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSelectionStudy(rows))
	}
	if want["topk"] {
		rows, err := experiments.TopKStudy(*tpchScale, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTopKStudy(rows))
	}
	return nil
}
