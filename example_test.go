package tsens_test

import (
	"fmt"
	"log"

	"tsens"
)

// The paper's running example (Figure 1 / Example 2.1): the local
// sensitivity of the four-way natural join is 4, achieved by inserting
// (a2, b2, c1) into R1.
func ExampleLocalSensitivity() {
	r1, _ := tsens.NewRelation("R1", []string{"a", "b", "c"},
		[]tsens.Tuple{{1, 1, 1}, {1, 2, 1}, {2, 1, 1}})
	r2, _ := tsens.NewRelation("R2", []string{"a", "b", "d"},
		[]tsens.Tuple{{1, 1, 1}, {2, 2, 2}})
	r3, _ := tsens.NewRelation("R3", []string{"a", "e"},
		[]tsens.Tuple{{1, 1}, {2, 1}, {2, 2}})
	r4, _ := tsens.NewRelation("R4", []string{"b", "f"},
		[]tsens.Tuple{{1, 1}, {2, 1}, {2, 2}})
	db, _ := tsens.NewDatabase(r1, r2, r3, r4)
	q, _ := tsens.ParseQuery("q", "R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)")

	res, err := tsens.LocalSensitivity(q, db, tsens.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", res.Count)
	fmt.Println("local sensitivity:", res.LS)
	fmt.Println("most sensitive relation:", res.Best.Relation)
	// Output:
	// count: 1
	// local sensitivity: 4
	// most sensitive relation: R1
}

// Tuple sensitivities of a two-way join: δ(t) counts the join partners a
// tuple has (or would have).
func ExampleTupleSensitivities() {
	orders, _ := tsens.NewRelation("Orders", []string{"cust", "order"},
		[]tsens.Tuple{{1, 10}, {1, 11}, {2, 12}})
	items, _ := tsens.NewRelation("Items", []string{"order", "item"},
		[]tsens.Tuple{{10, 100}, {10, 101}, {11, 102}})
	db, _ := tsens.NewDatabase(orders, items)
	q, _ := tsens.ParseQuery("q", "Orders(C,O), Items(O,I)")

	fn, err := tsens.TupleSensitivities(q, db, "Orders", tsens.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fn(tsens.Tuple{1, 10})) // order 10 has two items
	fmt.Println(fn(tsens.Tuple{1, 11})) // order 11 has one item
	fmt.Println(fn(tsens.Tuple{9, 12})) // order 12 has none
	// Output:
	// 2
	// 1
	// 0
}

// Path queries run through Algorithm 1 in O(n log n) regardless of the
// output size.
func ExamplePathLocalSensitivity() {
	a, _ := tsens.NewRelation("A", []string{"x", "y"}, []tsens.Tuple{{1, 5}, {2, 5}})
	b, _ := tsens.NewRelation("B", []string{"y", "z"}, []tsens.Tuple{{5, 7}, {5, 8}, {5, 9}})
	db, _ := tsens.NewDatabase(a, b)
	q, _ := tsens.ParseQuery("q", "A(X,Y), B(Y,Z)")

	res, err := tsens.PathLocalSensitivity(q, db)
	if err != nil {
		log.Fatal(err)
	}
	// Adding another (·,5) to A creates 3 outputs; adding (5,·) to B
	// creates 2; the maximum is 3.
	fmt.Println(res.Count, res.LS)
	// Output:
	// 6 3
}

// Materialize enumerates the full join output with the Yannakakis full
// reducer.
func ExampleMaterialize() {
	a, _ := tsens.NewRelation("A", []string{"x", "y"}, []tsens.Tuple{{1, 5}, {9, 9}})
	b, _ := tsens.NewRelation("B", []string{"y", "z"}, []tsens.Tuple{{5, 7}})
	db, _ := tsens.NewDatabase(a, b)
	q, _ := tsens.ParseQuery("q", "A(X,Y), B(Y,Z)")

	out, err := tsens.Materialize(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Attrs)
	fmt.Println(out.Rows)
	// Output:
	// [X Y Z]
	// [[1 5 7]]
}
