package tsens

import (
	"math/rand"
	"testing"
)

// example21 builds the Figure 1 instance through the public API only.
func example21(t *testing.T) (*Query, *Database) {
	t.Helper()
	r1, err := NewRelation("R1", []string{"a", "b", "c"}, []Tuple{{1, 1, 1}, {1, 2, 1}, {2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRelation("R2", []string{"a", "b", "d"}, []Tuple{{1, 1, 1}, {2, 2, 2}})
	r3, _ := NewRelation("R3", []string{"a", "e"}, []Tuple{{1, 1}, {2, 1}, {2, 2}})
	r4, _ := NewRelation("R4", []string{"b", "f"}, []Tuple{{1, 1}, {2, 1}, {2, 2}})
	db, err := NewDatabase(r1, r2, r3, r4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("q", "R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)")
	if err != nil {
		t.Fatal(err)
	}
	return q, db
}

func TestPublicAPIExample21(t *testing.T) {
	q, db := example21(t)
	if !IsAcyclic(q) {
		t.Fatal("Figure 1 query must be acyclic")
	}
	res, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != 4 {
		t.Fatalf("LS=%d, want 4", res.LS)
	}
	cnt, err := Count(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 1 {
		t.Fatalf("Count=%d, want 1", cnt)
	}
	naive, err := NaiveLocalSensitivity(q, db, NaiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.LS != res.LS {
		t.Fatalf("naive LS=%d", naive.LS)
	}
	bound, err := ElasticSensitivity(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bound < res.LS {
		t.Fatalf("elastic %d below exact %d", bound, res.LS)
	}
}

func TestPublicAPIPathAndDict(t *testing.T) {
	d := NewDict()
	rows := []Tuple{
		{d.Encode("SFO"), d.Encode("JFK")},
		{d.Encode("SFO"), d.Encode("ORD")},
	}
	r1, err := NewRelation("Leg1", []string{"src", "dst"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRelation("Leg2", []string{"src", "dst"}, []Tuple{
		{d.Encode("JFK"), d.Encode("LHR")},
		{d.Encode("ORD"), d.Encode("LHR")},
	})
	db, _ := NewDatabase(r1, r2)
	q, err := ParseQuery("trips", "Leg1(A,B), Leg2(B,C)")
	if err != nil {
		t.Fatal(err)
	}
	if !IsPath(q) {
		t.Fatal("two-leg join must be a path")
	}
	res, err := PathLocalSensitivity(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != 1 {
		t.Fatalf("LS=%d, want 1 (each value occurs once per side)", res.LS)
	}
}

func TestPublicAPIGHDAndMechanisms(t *testing.T) {
	edges := []Tuple{{1, 2}, {2, 3}, {3, 1}, {2, 1}, {3, 2}, {1, 3}}
	r := func(name string) *Relation {
		rel, _ := NewRelation(name, []string{"x", "y"}, edges)
		return rel
	}
	db, _ := NewDatabase(r("R1"), r("R2"), r("R3"))
	q, err := ParseQuery("tri", "R1(A,B), R2(B,C), R3(C,A)")
	if err != nil {
		t.Fatal(err)
	}
	if IsAcyclic(q) {
		t.Fatal("triangle reported acyclic")
	}
	d, err := FindDecomposition(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalSensitivity(q, db, Options{Decomposition: d})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := CountGHD(q, db, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != cnt {
		t.Fatalf("Count=%d vs %d", res.Count, cnt)
	}
	fn, err := TupleSensitivities(q, db, "R2", Options{Decomposition: d})
	if err != nil {
		t.Fatal(err)
	}
	if fn(Tuple{1, 2}) <= 0 {
		t.Fatal("existing edge has zero sensitivity")
	}
	run, err := TSensDP(q, db, Options{Decomposition: d}, "R2",
		TSensDPConfig{Epsilon: 1e6, Bound: 10}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if run.True != cnt {
		t.Fatalf("mechanism True=%d, want %d", run.True, cnt)
	}
	ps, err := PrivSQL(q, db, Options{Decomposition: d}, "R2", nil, nil,
		PrivSQLConfig{Epsilon: 1e6}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Bias != 0 {
		t.Fatalf("no-policy PrivSQL bias=%g", ps.Bias)
	}
}

func TestPublicAPIDownwardAndSmooth(t *testing.T) {
	q, db := example21(t)
	down, err := DownwardLocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if down.LS != 1 {
		t.Fatalf("downward LS=%d, want 1 (Figure 1 has one output tuple)", down.LS)
	}
	s0, err := ElasticSensitivityAt(q, db, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ElasticSensitivity(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != base {
		t.Fatalf("Ŝ_0=%d vs Ŝ=%d", s0, base)
	}
	s5, err := ElasticSensitivityAt(q, db, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s5 < s0 {
		t.Fatalf("Ŝ_5=%d below Ŝ_0=%d", s5, s0)
	}
	smooth, err := SmoothElasticSensitivity(q, db, nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if smooth < float64(s0) {
		t.Fatalf("smooth=%g below Ŝ_0=%d", smooth, s0)
	}
}

func TestPublicAPIQueryBuilder(t *testing.T) {
	q, err := NewQuery("q", []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, map[string][]Predicate{"R2": {{Var: "C", Op: Ge, Value: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 {
		t.Fatal("builder lost atoms")
	}
	if _, err := NewDecomposition(q, [][]int{{0}, {1}}); err != nil {
		t.Fatalf("trivial decomposition of acyclic query rejected: %v", err)
	}
}
