package tsens

import (
	"math/rand"
	"testing"
)

// TestSessionPublicAPI drives the public session surface end to end: open,
// replay a generated update stream in mixed single/bulk batches on a shared
// worker pool, stream DP answers, and cross-check against the one-shot
// solver.
func TestSessionPublicAPI(t *testing.T) {
	db := GenerateEgoNetwork(EgoNetConfig{Nodes: 30, Edges: 150, Circles: 40, Seed: 2})
	q, err := ParseQuery("qw", "R1(A,B), R2(B,C), R3(C,D), R4(D,E)")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewWorkerPool(4)
	defer pool.Close()
	opts := Options{Parallelism: 4, Pool: pool}
	sess, err := OpenSession(q, db, SessionOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := Count(q, db); sess.Count() != want {
		t.Fatalf("initial count %d, want %d", sess.Count(), want)
	}

	stream := GenerateUpdateStream(db, 200, 0.4, 7)
	// Mirror the stream into a plain database for cross-checks.
	mirror := db.Clone()
	applyMirror := func(u Update) {
		r := mirror.Relation(u.Rel)
		if u.Insert {
			r.Rows = append(r.Rows, u.Row.Clone())
			return
		}
		for i, row := range r.Rows {
			if row.Equal(u.Row) {
				r.Rows[i] = r.Rows[len(r.Rows)-1]
				r.Rows = r.Rows[:len(r.Rows)-1]
				return
			}
		}
		t.Fatalf("mirror: absent tuple %v", u.Row)
	}
	for _, u := range stream {
		applyMirror(u)
	}
	// Replay: first half one by one, second half as one bulk batch.
	half := len(stream) / 2
	for _, u := range stream[:half] {
		var err error
		if u.Insert {
			err = sess.Insert(u.Rel, u.Row)
		} else {
			err = sess.Delete(u.Rel, u.Row)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Apply(stream[half:]); err != nil {
		t.Fatal(err)
	}
	if sess.Rebuilds() == 0 {
		t.Fatal("bulk batch did not trigger a rebuild")
	}

	want, err := LocalSensitivity(q, mirror, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.LS()
	if err != nil {
		t.Fatal(err)
	}
	if got.LS != want.LS || got.Count != want.Count || sess.Count() != want.Count {
		t.Fatalf("session LS=%d Count=%d, scratch LS=%d Count=%d", got.LS, got.Count, want.LS, want.Count)
	}

	// Streaming DP release over the live session.
	st, err := NewStreamingTSensDP(sess, "R1", StreamingTSensDPConfig{
		TSensDPConfig: TSensDPConfig{Epsilon: 1, Bound: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	run, fresh, err := st.Answer(rng)
	if err != nil || !fresh {
		t.Fatalf("streaming answer: fresh=%v err=%v", fresh, err)
	}
	if run.True != want.Count {
		t.Fatalf("streaming True=%d, want %d", run.True, want.Count)
	}
	if _, fresh, err = st.Answer(rng); err != nil || fresh {
		t.Fatalf("second answer should replay: fresh=%v err=%v", fresh, err)
	}
}
