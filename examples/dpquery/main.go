// DP query answering: the Section 6 application. A counting join query
// over a TPC-H-like database is answered with ε-differential privacy for
// the CUSTOMER relation three ways:
//
//  1. Laplace noise scaled to the elastic-sensitivity static bound — the
//     pre-TSens state of the art, whose noise dwarfs the answer;
//  2. TSensDP — truncation at an SVT-learned tuple-sensitivity threshold
//     (Theorem 6.1), whose error is a few percent;
//  3. the PrivSQL-style baseline for comparison.
//
// Run with: go run ./examples/dpquery
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tsens"
)

func main() {
	// Scale 0.01 gives |Q(D)| ≈ 60000, matching the paper's Table 2 row
	// for q1 (60175).
	const (
		epsilon = 1.0
		scale   = 0.01
		runs    = 15
	)
	db := tsens.GenerateTPCH(tsens.TPCHConfig{Scale: scale, Seed: 11})
	q, err := tsens.ParseQuery("q1",
		"REGION(RK), NATION(RK,NK), CUSTOMER(NK,CK), ORDERS(CK,OK), LINEITEM(OK,LSK,LPK)")
	if err != nil {
		log.Fatal(err)
	}
	trueCount, err := tsens.Count(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|Q(D)| = %d   (ε = %g, %d runs, median relative error)\n\n", trueCount, epsilon, runs)

	// 1. Plain Laplace at the elastic bound.
	elasticGS, err := tsens.ElasticSensitivity(q, db, nil)
	if err != nil {
		log.Fatal(err)
	}
	elasticErr := medianAbs(runs, func(rng *rand.Rand) float64 {
		noise := lap(rng, float64(elasticGS)/epsilon)
		return math.Abs(noise) / float64(trueCount)
	})
	fmt.Printf("Laplace @ elastic bound: GS=%-10d median error %7.1f%%\n", elasticGS, elasticErr*100)

	// 2. TSensDP.
	var tsensGS int64
	tsensErr := medianAbs(runs, func(rng *rand.Rand) float64 {
		run, err := tsens.TSensDP(q, db, tsens.Options{}, "CUSTOMER",
			tsens.TSensDPConfig{Epsilon: epsilon, Bound: 100}, rng)
		if err != nil {
			log.Fatal(err)
		}
		tsensGS = run.GlobalSens
		return run.Error
	})
	fmt.Printf("TSensDP:                 GS=%-10d median error %7.1f%%\n", tsensGS, tsensErr*100)

	// 3. PrivSQL-style baseline with the FK policy of the paper.
	policy := []tsens.Truncation{
		{Relation: "ORDERS", KeyVars: []string{"CK"}},
		{Relation: "LINEITEM", KeyVars: []string{"OK"}},
	}
	var privGS int64
	privErr := medianAbs(runs, func(rng *rand.Rand) float64 {
		run, err := tsens.PrivSQL(q, db, tsens.Options{}, "CUSTOMER", policy, nil,
			tsens.PrivSQLConfig{Epsilon: epsilon}, rng)
		if err != nil {
			log.Fatal(err)
		}
		privGS = run.GlobalSens
		return run.Error
	})
	fmt.Printf("PrivSQL baseline:        GS=%-10d median error %7.1f%%\n", privGS, privErr*100)

	fmt.Println("\nBoth truncation mechanisms answer this simple path query within a few")
	fmt.Println("percent (on q1 the paper's Table 2 also has PrivSQL slightly ahead:")
	fmt.Println("1.34% vs 3.56%), while noise at the static elastic bound is useless.")
	fmt.Println("The gap reverses dramatically on complex queries — run")
	fmt.Println("`go run ./cmd/experiments -only table2` to see PrivSQL exceed 99%")
	fmt.Println("error on q2/q3/q◦/q* while TSensDP stays in single digits.")
}

func lap(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return scale * math.Log(1-2*(-u))
	}
	return -scale * math.Log(1-2*u)
}

func medianAbs(runs int, f func(*rand.Rand) float64) float64 {
	vals := make([]float64, runs)
	for i := range vals {
		vals[i] = f(rand.New(rand.NewSource(int64(100 + i))))
	}
	// Insertion sort: tiny n.
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}
