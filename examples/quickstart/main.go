// Quickstart: the running example of the paper (Figure 1 / Example 2.1).
//
// Four relations R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F) are naturally
// joined; the local sensitivity of the counting query is 4, achieved by
// inserting (a2,b2,c1) into R1 — that one tuple would join with 4 new
// combinations of the other relations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tsens"
)

func main() {
	// Encode the paper's symbolic values a1,a2,b1,... through a dictionary
	// so the printout matches Figure 1.
	d := tsens.NewDict()
	v := func(s string) int64 { return d.Encode(s) }

	r1, err := tsens.NewRelation("R1", []string{"a", "b", "c"}, []tsens.Tuple{
		{v("a1"), v("b1"), v("c1")},
		{v("a1"), v("b2"), v("c1")},
		{v("a2"), v("b1"), v("c1")},
	})
	if err != nil {
		log.Fatal(err)
	}
	r2, _ := tsens.NewRelation("R2", []string{"a", "b", "d"}, []tsens.Tuple{
		{v("a1"), v("b1"), v("d1")},
		{v("a2"), v("b2"), v("d2")},
	})
	r3, _ := tsens.NewRelation("R3", []string{"a", "e"}, []tsens.Tuple{
		{v("a1"), v("e1")},
		{v("a2"), v("e1")},
		{v("a2"), v("e2")},
	})
	r4, _ := tsens.NewRelation("R4", []string{"b", "f"}, []tsens.Tuple{
		{v("b1"), v("f1")},
		{v("b2"), v("f1")},
		{v("b2"), v("f2")},
	})
	db, err := tsens.NewDatabase(r1, r2, r3, r4)
	if err != nil {
		log.Fatal(err)
	}

	q, err := tsens.ParseQuery("q", "R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("acyclic: %v\n", tsens.IsAcyclic(q))

	res, err := tsens.LocalSensitivity(q, db, tsens.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|Q(D)| = %d (Figure 1b: one output tuple)\n", res.Count)
	fmt.Printf("local sensitivity = %d (Example 2.1)\n", res.LS)

	best := res.Best
	fmt.Printf("most sensitive tuple: relation %s, (", best.Relation)
	for i, vr := range best.Vars {
		if i > 0 {
			fmt.Print(", ")
		}
		if best.Wildcard[i] {
			fmt.Printf("%s=<any>", vr)
		} else {
			fmt.Printf("%s=%s", vr, d.Decode(best.Values[i]))
		}
	}
	fmt.Println(")")
	fmt.Println("\nper-relation most sensitive tuples:")
	for _, a := range q.Atoms {
		tr := res.PerRelation[a.Relation]
		fmt.Printf("  %-3s δ = %d\n", a.Relation, tr.Sensitivity)
	}

	// Cross-check with the naive Theorem 3.1 oracle, feasible at this size.
	naive, err := tsens.NaiveLocalSensitivity(q, db, tsens.NaiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive oracle agrees: %v (LS=%d)\n", naive.LS == res.LS, naive.LS)
}
