// SAT reduction: Theorem 3.2 in action. The paper proves local sensitivity
// NP-hard (in combined complexity) by reducing 3SAT to it: clause relations
// hold the satisfying triples, an empty relation R0 spans all variables,
// and LS(Q, D) > 0 exactly when the formula is satisfiable — with the most
// sensitive tuple encoding a satisfying assignment.
//
// This example "solves" a small 3SAT instance by asking TSens for the most
// sensitive tuple, then cross-checks with brute force. It is a correctness
// demonstration, not a competitive SAT solver (the reduction is the reason
// no polynomial combined-complexity algorithm can exist unless P=NP).
//
// Run with: go run ./examples/satreduction
package main

import (
	"fmt"
	"log"

	"tsens"
	"tsens/internal/reduction"
)

func main() {
	// (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ ¬x3) ∧ (¬x1 ∨ ¬x2 ∨ x3) ∧ (x0 ∨ ¬x2 ∨ ¬x3)
	f := &reduction.Formula{
		NumVars: 4,
		Clauses: []reduction.Clause{
			{l(0, false), l(1, false), l(2, false)},
			{l(0, true), l(1, false), l(3, true)},
			{l(1, true), l(2, true), l(3, false)},
			{l(0, false), l(2, true), l(3, true)},
		},
	}
	fmt.Println("formula: (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ ¬x3) ∧ (¬x1 ∨ ¬x2 ∨ x3) ∧ (x0 ∨ ¬x2 ∨ ¬x3)")

	q, db, err := reduction.Build(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced to query %s over %d relations (%d tuples); acyclic: %v\n",
		q.Name, len(q.Atoms), db.Size(), tsens.IsAcyclic(q))

	res, err := tsens.LocalSensitivity(q, db, tsens.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.LS == 0 {
		fmt.Println("LS(Q,D) = 0 → the formula is UNSATISFIABLE")
	} else {
		fmt.Printf("LS(Q,D) = %d > 0 → SATISFIABLE; decoding the most sensitive tuple of %s:\n",
			res.LS, res.Best.Relation)
		assignment := make([]bool, f.NumVars)
		for i, v := range res.Best.Values {
			assignment[i] = v == 1
			fmt.Printf("  x%d = %v\n", i, assignment[i])
		}
		if !f.Satisfied(assignment) {
			log.Fatal("BUG: extracted assignment does not satisfy the formula")
		}
		fmt.Println("verified: the assignment satisfies every clause")
	}

	_, sat := f.BruteForceSAT()
	fmt.Printf("brute-force SAT agrees: %v\n", sat == (res.LS > 0))
}

func l(v int, neg bool) reduction.Literal { return reduction.Literal{Var: v, Negated: neg} }
