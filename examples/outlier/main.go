// Outlier detection: which relationship in a social network is most
// structurally important? Using the triangle query q△ over an ego-network
// (Section 7.1's Facebook workload), the most sensitive tuple is the edge —
// existing or missing — whose insertion or deletion changes the triangle
// count the most: a direct "critical link" / outlier-influence analysis.
//
// The triangle query is cyclic, so this example also demonstrates the
// generalized-hypertree-decomposition path (Section 5.4): the bags
// {R1,R2}, {R3} of Figure 5b, found automatically here.
//
// Run with: go run ./examples/outlier
package main

import (
	"fmt"
	"log"

	"tsens"
)

func main() {
	db := tsens.GenerateEgoNetwork(tsens.EgoNetConfig{
		Nodes: 80, Edges: 500, Circles: 120, Seed: 3,
	})
	q, err := tsens.ParseQuery("triangles", "R1(A,B), R2(B,C), R3(C,A)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s is acyclic: %v\n", q.Name, tsens.IsAcyclic(q))

	// Cyclic: find a minimal-width GHD automatically (the paper specifies
	// {R1,R2},{R3} — the search recovers width 2).
	d, err := tsens.FindDecomposition(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypertree decomposition bags: %v (width %d)\n\n", d.Bags, d.Width())

	opts := tsens.Options{Decomposition: d}
	res, err := tsens.LocalSensitivity(q, db, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangle count |Q(D)| = %d\n", res.Count)
	fmt.Printf("local sensitivity     = %d\n", res.LS)
	b := res.Best
	kind := "adding the missing edge"
	if b.InDatabase {
		kind = "removing the existing edge"
	}
	fmt.Printf("most influential link : %s(%d → %d) in table %s — %s changes %d triangles\n\n",
		b.Relation, b.Values[0], b.Values[1], b.Relation, kind, b.Sensitivity)

	// Rank the top existing edges of R2 by influence: the tuple-sensitivity
	// evaluator scores each edge in O(1) after one preprocessing pass.
	fn, err := tsens.TupleSensitivities(q, db, "R2", opts)
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		u, v int64
		s    int64
	}
	var top []scored
	for _, row := range db.Relation("R2").Rows {
		top = append(top, scored{row[0], row[1], fn(row)})
	}
	for i := 1; i < len(top); i++ { // insertion sort by influence
		for j := i; j > 0 && top[j].s > top[j-1].s; j-- {
			top[j], top[j-1] = top[j-1], top[j]
		}
	}
	fmt.Println("top-5 most influential existing edges in R2:")
	n := 5
	if len(top) < n {
		n = len(top)
	}
	for _, e := range top[:n] {
		fmt.Printf("  edge %3d → %-3d participates in %d triangle joins\n", e.u, e.v, e.s)
	}
}
