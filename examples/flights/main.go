// Flights: the introduction's motivating scenario. An airline counts the
// possible three-leg itineraries HOME → HUB1 → HUB2 → DEST as a path join
// over leg tables. The local-sensitivity analysis answers: which single
// flight, existing or hypothetical, changes the itinerary count the most?
// That is exactly the "search for a new flight that can meet the
// requirements of popular trips" use case.
//
// Run with: go run ./examples/flights
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tsens"
)

func main() {
	d := tsens.NewDict()
	rng := rand.New(rand.NewSource(7))

	cities := [][]string{
		{"SFO", "SEA", "LAX", "DEN"},        // origins
		{"ORD", "DFW", "ATL"},               // first hubs
		{"JFK", "BOS", "IAD"},               // second hubs
		{"LHR", "CDG", "FRA", "AMS", "MAD"}, // destinations
	}
	// Random schedules per leg; popular hubs get more flights.
	leg := func(name string, from, to []string, n int) *tsens.Relation {
		rows := make([]tsens.Tuple, n)
		for i := range rows {
			rows[i] = tsens.Tuple{
				d.Encode(from[rng.Intn(len(from))]),
				d.Encode(to[rng.Intn(len(to))]),
			}
		}
		r, err := tsens.NewRelation(name, []string{"from", "to"}, rows)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	db, err := tsens.NewDatabase(
		leg("Leg1", cities[0], cities[1], 60),
		leg("Leg2", cities[1], cities[2], 40),
		leg("Leg3", cities[2], cities[3], 70),
	)
	if err != nil {
		log.Fatal(err)
	}

	q, err := tsens.ParseQuery("itineraries", "Leg1(Home,Hub1), Leg2(Hub1,Hub2), Leg3(Hub2,Dest)")
	if err != nil {
		log.Fatal(err)
	}
	if !tsens.IsPath(q) {
		log.Fatal("itinerary query should be a path join")
	}

	// Algorithm 1: O(n log n) regardless of the (much larger) output size.
	res, err := tsens.PathLocalSensitivity(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three-leg itineraries today: %d\n", res.Count)
	fmt.Printf("local sensitivity: %d\n\n", res.LS)

	fmt.Println("most impactful flight per leg (add it — or lose it — and this many itineraries change):")
	for _, a := range q.Atoms {
		tr := res.PerRelation[a.Relation]
		from, to := "<any>", "<any>"
		if !tr.Wildcard[0] {
			from = d.Decode(tr.Values[0])
		}
		if !tr.Wildcard[1] {
			to = d.Decode(tr.Values[1])
		}
		status := "a new route"
		if tr.InDatabase {
			status = "an existing flight"
		}
		fmt.Printf("  %-5s %s → %-5s  Δ itineraries = %-5d (%s)\n", a.Relation+":", from, to, tr.Sensitivity, status)
	}

	// The same analysis restricted to itineraries ending in London: a
	// selection predicate on the destination.
	lhr := d.Encode("LHR")
	q2, err := tsens.NewQuery("to_london", q.Atoms, map[string][]tsens.Predicate{
		"Leg3": {{Var: "Dest", Op: tsens.Eq, Value: lhr}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := tsens.LocalSensitivity(q2, db, tsens.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrestricted to LHR arrivals: %d itineraries, sensitivity %d via %s\n",
		res2.Count, res2.LS, res2.Best.Relation)
}
