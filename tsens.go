// Package tsens is the public API of the TSens library, a Go implementation
// of "Computing Local Sensitivities of Counting Queries with Joins" (Tao,
// He, Machanavajjhala, Roy — SIGMOD 2020).
//
// Given a full conjunctive counting query Q without self-joins and a
// database D, the library computes the local sensitivity LS(Q,D) — the
// largest change in |Q(D)| caused by inserting or deleting one tuple
// anywhere — together with the most sensitive tuple, in near-linear time
// for path and doubly-acyclic queries (Algorithms 1 and 2 of the paper) and
// through generalized hypertree decompositions for cyclic queries. On top
// of the sensitivity engine it provides TSensDP, a truncation-based
// ε-differentially-private mechanism for answering counting queries, plus
// the baselines the paper compares against (elastic sensitivity, a
// PrivSQL-style mechanism, and the naive re-evaluation oracle).
//
// The execution layer is a fused hash kernel over counted relations
// (int64-keyed joins and group-bys with arena row storage; see
// docs/PERFORMANCE.md), and the join-tree passes run on a bounded worker
// pool — set Options.Parallelism to control it (0 = GOMAXPROCS, 1 =
// sequential; results are identical at any setting). Options.Pool
// additionally shares one set of worker goroutines across solver
// invocations (NewWorkerPool).
//
// For changing data, OpenSession returns a stateful Session that maintains
// |Q(D)| and LS(Q,D) under single-tuple inserts and deletes with
// near-O(path) delta propagation instead of from-scratch passes (see
// docs/INCREMENTAL.md), and NewStreamingTSensDP layers a drift-triggered
// ε-DP release schedule on top of it.
//
// NewServer turns the session engine into a long-lived serving process: one
// shared snapshot plus an append-only update log multiplexes many
// registered queries behind a sharded-writer/multi-reader boundary
// (ServerOptions.Shards): updates route to per-shard writer goroutines by
// relation+key hash, queries sharing a variable across all atoms at the
// routing columns are maintained as one sub-session per shard, and epoch
// views publish only at consistent cuts joined across every shard's
// watermark. Budget-accounted ε-DP releases and an HTTP/JSON front end ride
// on top (NewServerAPI, the tsens serve command; see docs/SERVING.md).
// With ServerOptions.WALDir set the server is durable: appends, query
// registrations, and every fresh ε-spend are journaled to a checksummed
// write-ahead log before acknowledgment, periodic checkpoints bound
// recovery replay, and a restart recovers every registered query at its
// exact epoch with its exact spent budget (tsens serve -wal).
//
// Quick start:
//
//	r1, _ := tsens.NewRelation("R1", []string{"a", "b"}, rows1)
//	r2, _ := tsens.NewRelation("R2", []string{"b", "c"}, rows2)
//	db, _ := tsens.NewDatabase(r1, r2)
//	q, _ := tsens.ParseQuery("q", "R1(A,B), R2(B,C)")
//	res, _ := tsens.LocalSensitivity(q, db, tsens.Options{})
//	fmt.Println(res.LS, res.Best)
//
//	sess, _ := tsens.OpenSession(q, db, tsens.SessionOptions{})
//	_ = sess.Insert("R1", tsens.Tuple{1, 2})
//	res2, _ := sess.LS()
//	fmt.Println(sess.Count(), res2.LS)
package tsens

import (
	"math/rand"

	"tsens/internal/core"
	"tsens/internal/elastic"
	"tsens/internal/ghd"
	"tsens/internal/incremental"
	"tsens/internal/mechanism"
	"tsens/internal/par"
	"tsens/internal/parser"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/serve"
	"tsens/internal/workload"
	"tsens/internal/yannakakis"
)

// Data model.
type (
	// Tuple is a row of int64 attribute values. Use Dict to encode strings.
	Tuple = relation.Tuple
	// Relation is a named base table under bag semantics.
	Relation = relation.Relation
	// Database is a set of relations addressed by name.
	Database = relation.Database
	// Dict dictionary-encodes strings to int64 values.
	Dict = relation.Dict
	// Counted is a relation with an explicit multiplicity column, the form
	// returned by Materialize.
	Counted = relation.Counted
)

// Query model.
type (
	// Query is a full conjunctive counting query without self-joins.
	Query = query.Query
	// Atom is one R(vars...) literal of a query body.
	Atom = query.Atom
	// Predicate is a per-tuple selection on one variable.
	Predicate = query.Predicate
	// Op is a predicate comparison operator.
	Op = query.Op
	// Decomposition assigns atoms to GHD bags for cyclic queries.
	Decomposition = ghd.Decomposition
)

// Predicate operators.
const (
	Eq = query.Eq
	Ne = query.Ne
	Lt = query.Lt
	Le = query.Le
	Gt = query.Gt
	Ge = query.Ge
)

// Sensitivity engine types.
type (
	// Options configures LocalSensitivity (decomposition, skip list, top-k).
	Options = core.Options
	// Result reports LS, the most sensitive tuple, and per-relation maxima.
	Result = core.Result
	// TupleResult is one relation's most sensitive tuple.
	TupleResult = core.TupleResult
	// SensitivityFn evaluates δ(t,Q,D) for tuples of one relation.
	SensitivityFn = core.SensitivityFn
	// NaiveOptions bounds the brute-force oracle.
	NaiveOptions = core.NaiveOptions
)

// Mechanism types.
type (
	// DPRun is one differentially-private mechanism execution.
	DPRun = mechanism.Run
	// TSensDPConfig parameterizes the TSensDP mechanism.
	TSensDPConfig = mechanism.TSensDPConfig
	// PrivSQLConfig parameterizes the PrivSQL-style baseline.
	PrivSQLConfig = mechanism.PrivSQLConfig
	// Truncation is one relation/key pair of a PrivSQL policy.
	Truncation = mechanism.Truncation
	// StreamingTSensDP re-noises a TSensDP answer only when the true count
	// drifts, for serving counting queries over a live Session.
	StreamingTSensDP = mechanism.StreamingTSensDP
	// StreamingTSensDPConfig parameterizes the streaming mechanism.
	StreamingTSensDPConfig = mechanism.StreamingTSensDPConfig
)

// Incremental-session types.
type (
	// Session maintains LS(Q,D) and |Q(D)| under tuple inserts/deletes.
	Session = incremental.Session
	// SessionOptions configures OpenSession (exactness, bulk-rebuild
	// threshold, and the embedded solver Options).
	SessionOptions = incremental.Options
	// Update is one replayable single-tuple insert or delete.
	Update = relation.Update
	// WorkerPool is a reusable fixed-size worker pool for Options.Pool.
	WorkerPool = par.Pool
)

// Serving types.
type (
	// Server is a long-lived DP query server: a shared snapshot plus an
	// append-only update log partitioned across per-shard writers,
	// multiplexing registered queries (incremental session state per
	// shard) behind a sharded-writer/multi-reader boundary. Readers answer
	// from atomically published epoch views — always a consistent cut
	// joined across the shard watermarks — and never block on update
	// application.
	Server = serve.Server
	// ServerOptions configures NewServer (shard count and routing columns,
	// writer batch size, fan-out parallelism, drift gating, tombstone
	// compaction watermark, and WAL durability: WALDir, SyncEvery,
	// CheckpointEvery, WALCodec).
	ServerOptions = serve.Options
	// BudgetLedgerState is the exportable accounting of a BudgetLedger,
	// the part a durable deployment must persist across restarts.
	BudgetLedgerState = mechanism.LedgerState
	// ServerQuery registers one counting query with a Server (query,
	// solver options, private relation, release config, ε budget).
	ServerQuery = serve.QueryConfig
	// ServerView is one published epoch of one query: count, LS result,
	// and the drift-gated sensitivity snapshot releases read.
	ServerView = serve.View
	// ServerRelease is the outcome of one budget-accounted noisy release.
	ServerRelease = serve.ReleaseResult
	// ServerStats summarizes writer progress (epoch, backlog, skips).
	ServerStats = serve.Stats
	// ServerCodec translates wire values for the HTTP API; csvio loaders
	// implement it for dictionary-encoded snapshots.
	ServerCodec = serve.Codec
	// ServerAPI is the HTTP/JSON front end of a Server.
	ServerAPI = serve.API
	// BudgetLedger accounts cumulative ε spending against a fixed budget
	// under sequential composition.
	BudgetLedger = mechanism.Ledger
)

// NewServer starts a serving process over a private copy of db; register
// queries with Server.Register, feed updates through Server.Append, and
// read views/releases concurrently. Close it when done — gracefully: the
// acknowledged backlog is drained first (Server.CloseNow abandons it).
//
// With opts.WALDir set the server is durable: a fresh directory is seeded
// with a checkpoint of db, an existing one is recovered (db may then be
// nil) — registered queries, their epochs, and their exact spent ε come
// back, and an acknowledged Append or release is never lost to a crash.
func NewServer(db *Database, opts ServerOptions) (*Server, error) {
	return serve.New(db, opts)
}

// NewServerAPI wraps a Server in its HTTP/JSON handler. codec may be nil
// for integer-only data. A seed of 0 draws a cryptographically random
// release-noise seed (the production default); fix it only to make tests
// reproducible.
func NewServerAPI(srv *Server, codec ServerCodec, seed int64) *ServerAPI {
	return serve.NewAPI(srv, codec, seed)
}

// NewBudgetLedger returns a ledger enforcing a total ε budget (0 means
// unlimited, only recording what is spent).
func NewBudgetLedger(budget float64) (*BudgetLedger, error) {
	return mechanism.NewLedger(budget)
}

// RestoreBudgetLedger rebuilds a ledger from persisted accounting (the
// inverse of BudgetLedger.Export): embedders running their own durability
// must carry spent ε across restarts, or a crash resets every query's
// budget and voids the sequential-composition guarantee.
func RestoreBudgetLedger(st BudgetLedgerState) (*BudgetLedger, error) {
	return mechanism.RestoreLedger(st)
}

// NewWorkerPool starts a pool of n persistent workers (n < 1 means
// GOMAXPROCS) that Options.Pool can share across solver invocations and
// sessions. Close it when done.
func NewWorkerPool(n int) *WorkerPool { return par.NewPool(n) }

// OpenSession pins the query's join tree over a private copy of db and
// returns a stateful Session: Insert and Delete apply single-tuple updates
// by patching only the botjoin/topjoin tables on the affected root-to-leaf
// path (plus the multiplicity-table factors they feed), so Count() is O(1)
// and LS() costs hash lookups instead of full passes. See
// docs/INCREMENTAL.md for the cost model and fallback rules.
func OpenSession(q *Query, db *Database, opts SessionOptions) (*Session, error) {
	return incremental.Open(q, db, opts)
}

// GenerateUpdateStream derives a deterministic, replayable single-tuple
// update stream from a snapshot (deleteFrac of the ops delete live tuples;
// inserts recombine existing column values), the workload datagen -updates
// emits and Session.Apply replays.
func GenerateUpdateStream(db *Database, n int, deleteFrac float64, seed int64) []Update {
	return workload.UpdateStream(db, n, deleteFrac, seed)
}

// NewStreamingTSensDP binds the drift-triggered TSensDP variant to a live
// session and its primary private relation. Each fresh release spends the
// configured ε on the current database state; replayed answers spend
// nothing.
func NewStreamingTSensDP(sess *Session, private string, cfg StreamingTSensDPConfig) (*StreamingTSensDP, error) {
	return mechanism.NewStreamingTSensDP(sess, private, cfg)
}

// NewRelation constructs a validated base relation.
func NewRelation(name string, attrs []string, rows []Tuple) (*Relation, error) {
	return relation.New(name, attrs, rows)
}

// NewDatabase builds a database from relations with unique names.
func NewDatabase(rels ...*Relation) (*Database, error) {
	return relation.NewDatabase(rels...)
}

// NewDict returns an empty string dictionary.
func NewDict() *Dict { return relation.NewDict() }

// NewQuery constructs and validates a conjunctive query.
func NewQuery(name string, atoms []Atom, selections map[string][]Predicate) (*Query, error) {
	return query.New(name, atoms, selections)
}

// ParseQuery parses the textual query form, e.g.
// "R1(A,B), R2(B,C) where R2.C >= 5".
func ParseQuery(name, text string) (*Query, error) {
	return parser.Parse(name, text)
}

// NewDecomposition validates a GHD bag assignment (atom indexes per bag)
// for a cyclic query.
func NewDecomposition(q *Query, bags [][]int) (*Decomposition, error) {
	return ghd.FromBags(q, bags)
}

// FindDecomposition searches exhaustively for a minimal-width GHD; only
// feasible for small queries.
func FindDecomposition(q *Query, maxBagSize int) (*Decomposition, error) {
	return ghd.Search(q, maxBagSize)
}

// IsAcyclic reports whether the query hypergraph is α-acyclic.
func IsAcyclic(q *Query) bool { return query.IsAcyclic(q.Atoms) }

// IsPath reports whether Algorithm 1 (the O(n log n) path algorithm)
// applies to the query.
func IsPath(q *Query) bool {
	_, ok := query.PathOrder(q.Atoms)
	return ok
}

// LocalSensitivity computes LS(Q,D) and the most sensitive tuple with the
// TSens join-tree algorithm (Algorithm 2 plus the Section 5.4 extensions).
func LocalSensitivity(q *Query, db *Database, opts Options) (*Result, error) {
	return core.LocalSensitivity(q, db, opts)
}

// PathLocalSensitivity runs Algorithm 1, the specialized path-query solver.
func PathLocalSensitivity(q *Query, db *Database) (*Result, error) {
	return core.PathLocalSensitivity(q, db)
}

// NaiveLocalSensitivity runs the polynomial-data-complexity oracle of
// Theorem 3.1 (re-evaluation over the active and representative domains).
// It is exponential in query size; use it for validation on small inputs.
func NaiveLocalSensitivity(q *Query, db *Database, opts NaiveOptions) (*Result, error) {
	return core.NaiveLocalSensitivity(q, db, opts)
}

// TupleSensitivities returns a fast evaluator of δ(t,Q,D) for tuples of the
// named relation, the primitive behind sensitivity-based truncation.
func TupleSensitivities(q *Query, db *Database, rel string, opts Options) (SensitivityFn, error) {
	return core.TupleSensitivities(q, db, rel, opts)
}

// DownwardLocalSensitivity computes the deletion-only local sensitivity
// max_t δ⁻(t,Q,D) over existing tuples (the deletion-propagation question).
func DownwardLocalSensitivity(q *Query, db *Database, opts Options) (*Result, error) {
	return core.DownwardLocalSensitivity(q, db, opts)
}

// Count evaluates |Q(D)| for an acyclic query with Yannakakis-style
// counting.
func Count(q *Query, db *Database) (int64, error) {
	return yannakakis.Count(q, db)
}

// CountGHD evaluates |Q(D)| for a cyclic query through a decomposition.
func CountGHD(q *Query, db *Database, d *Decomposition) (int64, error) {
	return yannakakis.CountGHD(q, db, d)
}

// Materialize computes the full join output of an acyclic query over all
// its variables, using Yannakakis's full reducer so intermediate results
// stay bounded by input + output size.
func Materialize(q *Query, db *Database) (*Counted, error) {
	return yannakakis.Output(q, db)
}

// ElasticSensitivity computes the Flex static upper bound on LS(Q,D) along
// a left-deep join plan (empty order uses the query's atom order).
func ElasticSensitivity(q *Query, db *Database, order []string) (int64, error) {
	an, err := elastic.NewAnalyzer(q, db)
	if err != nil {
		return 0, err
	}
	if len(order) == 0 {
		order = elastic.DefaultOrder(q)
	}
	return an.LocalSensitivity(order)
}

// ElasticSensitivityAt computes the Flex bound at distance k: an upper
// bound on the local sensitivity of any database within k tuple changes
// of D, maximized over the choice of sensitive relation.
func ElasticSensitivityAt(q *Query, db *Database, order []string, k int64) (int64, error) {
	an, err := elastic.NewAnalyzer(q, db)
	if err != nil {
		return 0, err
	}
	if len(order) == 0 {
		order = elastic.DefaultOrder(q)
	}
	var max int64
	for _, atom := range q.Atoms {
		s, err := an.SensitivityAt(order, atom.Relation, k)
		if err != nil {
			return 0, err
		}
		if s > max {
			max = s
		}
	}
	return max, nil
}

// SmoothElasticSensitivity computes the β-smooth elastic sensitivity
// max_k e^{-βk}·Ŝ_k(Q,D), the smooth upper bound Flex calibrates noise to.
func SmoothElasticSensitivity(q *Query, db *Database, order []string, beta float64) (float64, error) {
	an, err := elastic.NewAnalyzer(q, db)
	if err != nil {
		return 0, err
	}
	if len(order) == 0 {
		order = elastic.DefaultOrder(q)
	}
	return an.SmoothSensitivity(order, beta)
}

// TSensDP answers the counting query with ε-differential privacy by
// truncating the primary private relation at an SVT-learned tuple
// sensitivity threshold (Section 6.2, Theorem 6.1).
func TSensDP(q *Query, db *Database, opts Options, private string, cfg TSensDPConfig, rng *rand.Rand) (*DPRun, error) {
	return mechanism.TSensDP(q, db, opts, private, cfg, rng)
}

// PrivSQL answers the counting query with the PrivSQL-style baseline:
// frequency-based truncation plus a static global-sensitivity bound.
func PrivSQL(q *Query, db *Database, opts Options, private string, policy []Truncation, order []string, cfg PrivSQLConfig, rng *rand.Rand) (*DPRun, error) {
	return mechanism.PrivSQL(q, db, opts, private, policy, order, cfg, rng)
}
