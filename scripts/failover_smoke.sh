#!/usr/bin/env bash
# Failover smoke for replicated `tsens serve`: a leader ships its WAL to a
# live follower process; the follower serves byte-identical reads and
# refuses writes and releases with 503 + Retry-After (the ε-ledger has one
# writer). Then the leader is SIGKILLed — no drain, no final checkpoint —
# and the follower promotes itself through the lease file: the epoch, the
# query answers, the replayed noisy release, and the remaining ε budget must
# all come through unchanged, and the promoted leader must accept writes.
#
# Requires: go, curl, jq. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib/poll.sh

QUERY='R1(A,B), R2(B,C), R3(C,D)'
N=150
LPORT="${LPORT:-8195}"
FPORT="${FPORT:-8196}"
RPORT="${RPORT:-8197}"
LBASE="http://127.0.0.1:$LPORT"
FBASE="http://127.0.0.1:$FPORT"

workdir=$(mktemp -d)
leader_pid=""
follower_pid=""
cleanup() {
  for p in "$leader_pid" "$follower_pid"; do
    if [ -n "$p" ]; then
      kill "$p" 2>/dev/null || true
      wait "$p" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/tsens" ./cmd/tsens
go build -o "$workdir/datagen" ./cmd/datagen

"$workdir/datagen" -kind facebook -nodes 50 -edges 300 -circles 60 \
  -out "$workdir/data" -updates "$N" -update-del-frac 0.4

state_is() { [ "$(curl -fsS "$1/readyz" | jq -r .state)" = "$2" ]; }

echo "--- starting replicating leader (lease-arbitrated)"
"$workdir/tsens" serve -data "$workdir/data" -addr "127.0.0.1:$LPORT" \
  -query "$QUERY" -id smoke -wal "$workdir/wal-leader" \
  -replicate "127.0.0.1:$RPORT" -lease "$workdir/lease" -lease-ttl 500ms &
leader_pid=$!
poll_until 15 "leader /healthz" curl -fsS "$LBASE/healthz"
poll_until 15 "leader leading" state_is "$LBASE" leading

echo "--- starting follower"
"$workdir/tsens" serve -follow "127.0.0.1:$RPORT" -addr "127.0.0.1:$FPORT" \
  -wal "$workdir/wal-follower" -lease "$workdir/lease" -lease-ttl 500ms &
follower_pid=$!
poll_until 15 "follower /healthz" curl -fsS "$FBASE/healthz"

echo "--- leader: register a budget query, replay the stream, spend some ε"
curl -fsS -X POST "$LBASE/queries" -d '{
  "id": "tri",
  "query": "R1(A,B), R2(B,C), R3(C,A)",
  "private": "R2",
  "release": {"epsilon": 1, "bound": 50},
  "budget": 2
}' | jq -c .
curl -fsS -X POST "$LBASE/updates?wait=epoch" -H 'Content-Type: text/csv' \
  --data-binary @"$workdir/data/updates.stream" | jq -c .
rel1=$(curl -fsS -X POST "$LBASE/queries/tri/release")
echo "$rel1" | jq -c .
[ "$(echo "$rel1" | jq -r .fresh)" = "true" ] || { echo "FAIL: first release not fresh"; exit 1; }
rel2=$(curl -fsS -X POST "$LBASE/queries/tri/release")
remaining_before=$(echo "$rel2" | jq -r .remaining)
noisy_before=$(echo "$rel2" | jq -r .noisy)
epoch=$(curl -fsS "$LBASE/epoch" | jq -r .epoch)
want=$(curl -fsS "$LBASE/queries/smoke/ls")
want_count=$(echo "$want" | jq -r .count)
want_ls=$(echo "$want" | jq -r .ls)

echo "--- follower catches up and serves the identical answer"
follower_at_epoch() { [ "$(curl -fsS "$FBASE/epoch" | jq -r .epoch)" = "$epoch" ]; }
poll_until 20 "follower catch-up to epoch $epoch" follower_at_epoch
poll_until 15 "follower /readyz following" state_is "$FBASE" following
got=$(curl -fsS "$FBASE/queries/smoke/ls")
echo "$got" | jq -c .
got_count=$(echo "$got" | jq -r .count)
got_ls=$(echo "$got" | jq -r .ls)
if [ "$got_count" != "$want_count" ] || [ "$got_ls" != "$want_ls" ]; then
  echo "FAIL: follower (count=$got_count, ls=$got_ls), leader (count=$want_count, ls=$want_ls)"
  exit 1
fi

echo "--- follower refuses writes and releases (503 + Retry-After)"
hdrs=$(mktemp)
code=$(curl -s -o /dev/null -D "$hdrs" -w '%{http_code}' -X POST "$FBASE/updates" \
  -d '{"updates":[{"op":"+","rel":"R1","row":["1","2"]}]}')
[ "$code" = "503" ] || { echo "FAIL: follower write got $code, want 503"; exit 1; }
grep -qi '^retry-after:' "$hdrs" || { echo "FAIL: follower 503 without Retry-After"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$FBASE/queries/tri/release")
[ "$code" = "503" ] || { echo "FAIL: follower release got $code, want 503"; exit 1; }
rm -f "$hdrs"

echo "--- SIGKILL the leader; the follower must promote via the lease"
kill -9 "$leader_pid"
wait "$leader_pid" 2>/dev/null || true
leader_pid=""
poll_until 20 "follower promotion to leading" state_is "$FBASE" leading

echo "--- promoted state: epoch, answers, and remaining ε unchanged"
epoch2=$(curl -fsS "$FBASE/epoch" | jq -r .epoch)
[ "$epoch2" = "$epoch" ] || { echo "FAIL: promoted epoch $epoch2 != $epoch"; exit 1; }
got2=$(curl -fsS "$FBASE/queries/smoke/ls")
echo "$got2" | jq -c .
got2_count=$(echo "$got2" | jq -r .count)
got2_ls=$(echo "$got2" | jq -r .ls)
if [ "$got2_count" != "$want_count" ] || [ "$got2_ls" != "$want_ls" ]; then
  echo "FAIL: promoted (count=$got2_count, ls=$got2_ls), want (count=$want_count, ls=$want_ls)"
  exit 1
fi
rel3=$(curl -fsS -X POST "$FBASE/queries/tri/release")
echo "$rel3" | jq -c .
[ "$(echo "$rel3" | jq -r .fresh)" = "false" ] || { echo "FAIL: promoted release re-spent budget (amnesia)"; exit 1; }
[ "$(echo "$rel3" | jq -r .noisy)" = "$noisy_before" ] || { echo "FAIL: replayed noisy value changed across failover"; exit 1; }
remaining_after=$(echo "$rel3" | jq -r .remaining)
[ "$remaining_after" = "$remaining_before" ] || { echo "FAIL: remaining ε $remaining_after != $remaining_before across failover"; exit 1; }

echo "--- promoted leader accepts writes"
curl -fsS -X POST "$FBASE/updates?wait=epoch" -H 'Content-Type: text/csv' \
  --data-binary @<(head -1 "$workdir/data/updates.stream") | jq -c .
epoch3=$(curl -fsS "$FBASE/epoch" | jq -r .epoch)
[ "$epoch3" -gt "$epoch2" ] || { echo "FAIL: promoted epoch did not advance past $epoch2"; exit 1; }

echo "failover smoke OK: count=$got2_count ls=$got2_ls (promoted at epoch $epoch2, remaining ε=$remaining_after)"
