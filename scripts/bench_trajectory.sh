#!/usr/bin/env bash
# Cross-PR benchmark trajectory: run `tsens bench` and leave one
# schema-stable BENCH_<date>.json per run. CI uploads the file as an
# artifact on every PR, so plotting the repo's performance over time is a
# jq one-liner across artifacts — provided the schema never drifts, which
# this script asserts: every run must produce exactly the key set below,
# or the trajectory breaks and the run fails loudly.
#
# Usage: scripts/bench_trajectory.sh [out.json]
#   BENCH_FAST=0 runs the full-size fixtures (minutes, for local deep dives);
#   the default is the CI-sized -fast mode (seconds).
#
# Requires: go, jq. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_$(date +%F).json}"
args=(-out "$OUT")
if [ "${BENCH_FAST:-1}" = "1" ]; then
  args+=(-fast)
fi

go run ./cmd/tsens bench "${args[@]}"

echo "--- schema check: $OUT must match tsens-bench/v2 exactly"
jq -e '.schema == "tsens-bench/v2"' "$OUT" >/dev/null \
  || { echo "FAIL: schema field is $(jq -r .schema "$OUT")"; exit 1; }

want_top='benchmarks date fast go gomaxprocs schema serve'
got_top=$(jq -r 'keys | sort | join(" ")' "$OUT")
[ "$got_top" = "$want_top" ] || { echo "FAIL: top-level keys '$got_top', want '$want_top'"; exit 1; }

want_entry='allocs_per_op bytes_per_op iterations name ns_per_op'
jq -r '.benchmarks[] | keys | sort | join(" ")' "$OUT" | sort -u | while read -r got; do
  [ "$got" = "$want_entry" ] || { echo "FAIL: benchmark entry keys '$got', want '$want_entry'"; exit 1; }
done

want_serve='drain_round_p50_ms drain_round_p99_ms reads_per_sec ring_depth_max shard_epoch_min update_p50_ms update_p90_ms update_p99_ms updates_per_sec'
got_serve=$(jq -r '.serve | keys | sort | join(" ")' "$OUT")
[ "$got_serve" = "$want_serve" ] || { echo "FAIL: serve keys '$got_serve', want '$want_serve'"; exit 1; }

jq -e '.benchmarks | length > 0' "$OUT" >/dev/null || { echo "FAIL: no benchmark entries"; exit 1; }
jq -e '.serve.reads_per_sec > 0' "$OUT" >/dev/null || { echo "FAIL: serve scenario reported zero reads/sec"; exit 1; }
jq -e '.serve.shard_epoch_min > 0' "$OUT" >/dev/null || { echo "FAIL: shard watermarks never advanced"; exit 1; }
jq -e '.serve.ring_depth_max >= 1' "$OUT" >/dev/null || { echo "FAIL: no version ring was ever published"; exit 1; }

echo "bench trajectory OK: $(jq -r '.benchmarks | length' "$OUT") benchmarks, \
$(jq -r '.serve.reads_per_sec | floor' "$OUT") reads/sec -> $OUT"
