#!/usr/bin/env bash
# Cross-PR benchmark trajectory: run `tsens bench` and leave one
# schema-stable BENCH_<date>.json per run. CI uploads the file as an
# artifact on every PR, so plotting the repo's performance over time is a
# jq one-liner across artifacts — provided the schema never drifts, which
# this script asserts: every run must produce exactly the key set below,
# or the trajectory breaks and the run fails loudly.
#
# Usage: scripts/bench_trajectory.sh [out.json]
#   BENCH_FAST=0 runs the full-size fixtures (minutes, for local deep dives);
#   the default is the CI-sized -fast mode (seconds).
#
# Requires: go, jq. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_$(date +%F).json}"
args=(-out "$OUT")
if [ "${BENCH_FAST:-1}" = "1" ]; then
  args+=(-fast)
fi

go run ./cmd/tsens bench "${args[@]}"

echo "--- schema check: $OUT must match tsens-bench/v3 exactly"
jq -e '.schema == "tsens-bench/v3"' "$OUT" >/dev/null \
  || { echo "FAIL: schema field is $(jq -r .schema "$OUT")"; exit 1; }

want_top='benchmarks date fast go gomaxprocs schema serve serve_many_queries'
got_top=$(jq -r 'keys | sort | join(" ")' "$OUT")
[ "$got_top" = "$want_top" ] || { echo "FAIL: top-level keys '$got_top', want '$want_top'"; exit 1; }

want_entry='allocs_per_op bytes_per_op iterations name ns_per_op'
jq -r '.benchmarks[] | keys | sort | join(" ")' "$OUT" | sort -u | while read -r got; do
  [ "$got" = "$want_entry" ] || { echo "FAIL: benchmark entry keys '$got', want '$want_entry'"; exit 1; }
done

want_serve='drain_round_p50_ms drain_round_p99_ms reads_per_sec ring_depth_max shard_epoch_min update_p50_ms update_p90_ms update_p99_ms updates_per_sec'
got_serve=$(jq -r '.serve | keys | sort | join(" ")' "$OUT")
[ "$got_serve" = "$want_serve" ] || { echo "FAIL: serve keys '$got_serve', want '$want_serve'"; exit 1; }

want_many='ns_per_update ns_per_update_per_query plan_nodes_shared queries'
jq -r '.serve_many_queries[] | keys | sort | join(" ")' "$OUT" | sort -u | while read -r got; do
  [ "$got" = "$want_many" ] || { echo "FAIL: serve_many_queries keys '$got', want '$want_many'"; exit 1; }
done

jq -e '.benchmarks | length > 0' "$OUT" >/dev/null || { echo "FAIL: no benchmark entries"; exit 1; }
jq -e '.serve.reads_per_sec > 0' "$OUT" >/dev/null || { echo "FAIL: serve scenario reported zero reads/sec"; exit 1; }
jq -e '.serve.shard_epoch_min > 0' "$OUT" >/dev/null || { echo "FAIL: shard watermarks never advanced"; exit 1; }
jq -e '.serve.ring_depth_max >= 1' "$OUT" >/dev/null || { echo "FAIL: no version ring was ever published"; exit 1; }
jq -e '.serve_many_queries | length == 3' "$OUT" >/dev/null \
  || { echo "FAIL: serve_many_queries must sweep exactly 1/16/128 queries"; exit 1; }
# The sharing acceptance bar: the per-update drain cost with 128 heavily
# overlapping queries must stay far below 128x the 1-query cost (the shared
# subplan DAG patches each node once and fans the delta out via memos).
# Observed ratio: ~26x on the full fixture, ~48x in -fast mode (the smaller
# fixture shrinks the 1-query baseline, not the per-query overhead). A
# broken sharing path lands at >=128x, so 96x fails loudly while leaving
# 2x headroom for noisy CI machines.
jq -e '(.serve_many_queries | sort_by(.queries)) as $m
       | $m[-1].ns_per_update < 96 * $m[0].ns_per_update' "$OUT" >/dev/null \
  || { echo "FAIL: 128-query per-update cost not << 128x the 1-query cost (sharing broken?)"; exit 1; }
jq -e '.serve_many_queries[] | select(.queries > 1) | .plan_nodes_shared > 0' "$OUT" >/dev/null \
  || { echo "FAIL: no shared plan nodes at >1 registered queries"; exit 1; }

echo "bench trajectory OK: $(jq -r '.benchmarks | length' "$OUT") benchmarks, \
$(jq -r '.serve.reads_per_sec | floor' "$OUT") reads/sec -> $OUT"
