#!/usr/bin/env bash
# Smoke test for `tsens serve`: start the server over a generated snapshot,
# replay the update stream through the HTTP update log, and compare the
# served count/LS against the incremental CLI's -verify'd answer (which
# itself cross-checks a from-scratch solve). Also exercises registration,
# a budget-accounted DP release, the malformed-stream diagnostics, and the
# durability restart round-trip: SIGTERM the server, restart it from its
# WAL directory, and verify the epoch, the answers, and the remaining ε
# budget all come back unchanged.
#
# Requires: go, curl, jq. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib/poll.sh

QUERY='R1(A,B), R2(B,C), R3(C,D), R4(D,E)'
N=200
PORT="${PORT:-8191}"
BASE="http://127.0.0.1:$PORT"

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true # let the final checkpoint land before rm
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/tsens" ./cmd/tsens
go build -o "$workdir/datagen" ./cmd/datagen

"$workdir/datagen" -kind facebook -nodes 60 -edges 400 -circles 80 \
  -out "$workdir/data" -updates "$N" -update-del-frac 0.4

echo "--- ground truth (incremental CLI, -verify cross-checks from-scratch)"
truth=$("$workdir/tsens" updates -data "$workdir/data" -query "$QUERY" -batch "$N" -verify)
echo "$truth"
want_count=$(echo "$truth" | awk '/^after/ {c=$6} END {print c}')
want_ls=$(echo "$truth" | awk '/^after/ {l=$9} END {print l}')

echo "--- malformed stream must fail with file:line diagnostics"
printf '+,R1,1,2\nbogus\n' > "$workdir/bad.stream"
if "$workdir/tsens" updates -data "$workdir/data" -query "$QUERY" \
    -stream "$workdir/bad.stream" >/dev/null 2>"$workdir/err.txt"; then
  echo "FAIL: malformed stream accepted"; exit 1
fi
grep -q "bad.stream:2" "$workdir/err.txt" || { echo "FAIL: no file:line in:"; cat "$workdir/err.txt"; exit 1; }
cat "$workdir/err.txt"

start_server() {
  # -shards 2 so the watermark assertions below see a real multi-shard
  # frontier, not the degenerate single-entry array.
  "$workdir/tsens" serve -data "$workdir/data" -addr "127.0.0.1:$PORT" \
    -query "$QUERY" -id smoke -shards 2 -wal "$workdir/wal" &
  server_pid=$!
  poll_until 15 "server /healthz" curl -fsS "$BASE/healthz"
}

echo "--- starting server (durable: -wal)"
start_server

echo "--- registering a second (cyclic) query with a release budget"
curl -fsS -X POST "$BASE/queries" -d '{
  "id": "tri",
  "query": "R1(A,B), R2(B,C), R3(C,A)",
  "private": "R2",
  "release": {"epsilon": 1, "bound": 50},
  "budget": 2
}' | jq -c .

echo "--- posting the update stream through the log (wait=epoch: read-your-writes)"
curl -fsS -X POST "$BASE/updates?wait=epoch" -H 'Content-Type: text/csv' \
  --data-binary @"$workdir/data/updates.stream" | jq -c .

echo "--- served LS must equal the verified incremental answer"
got=$(curl -fsS "$BASE/queries/smoke/ls")
echo "$got" | jq -c .
got_count=$(echo "$got" | jq -r .count)
got_ls=$(echo "$got" | jq -r .ls)
if [ "$got_count" != "$want_count" ] || [ "$got_ls" != "$want_ls" ]; then
  echo "FAIL: served (count=$got_count, ls=$got_ls), scratch (count=$want_count, ls=$want_ls)"
  exit 1
fi

echo "--- DP release: fresh then free replay, budget visible"
rel1=$(curl -fsS -X POST "$BASE/queries/tri/release")
echo "$rel1" | jq -c .
[ "$(echo "$rel1" | jq -r .fresh)" = "true" ] || { echo "FAIL: first release not fresh"; exit 1; }
rel2=$(curl -fsS -X POST "$BASE/queries/tri/release")
echo "$rel2" | jq -c .
[ "$(echo "$rel2" | jq -r .fresh)" = "false" ] || { echo "FAIL: second release spent budget without drift"; exit 1; }

echo "--- epoch bookkeeping (joined cut + per-shard watermarks)"
curl -fsS "$BASE/epoch" | jq -c .
pending=$(curl -fsS "$BASE/epoch" | jq -r .pending)
[ "$pending" = "0" ] || { echo "FAIL: $pending pending updates after wait=epoch"; exit 1; }
joined=$(curl -fsS "$BASE/epoch" | jq -r .joined)
epoch=$(curl -fsS "$BASE/epoch" | jq -r .epoch)
[ "$joined" = "$epoch" ] || { echo "FAIL: joined cut $joined != epoch $epoch at rest"; exit 1; }
# Async epochs: the per-shard watermarks are the authoritative frontier —
# one entry per shard, and at rest every one of them sits at the epoch.
epoch_doc=$(curl -fsS "$BASE/epoch")
shards=$(echo "$epoch_doc" | jq -r .shards)
wm_len=$(echo "$epoch_doc" | jq -r '.watermarks | length')
[ "$wm_len" = "$shards" ] || { echo "FAIL: /epoch watermarks has $wm_len entries for $shards shards"; exit 1; }
wm_bad=$(echo "$epoch_doc" | jq -r --argjson e "$epoch" '[.watermarks[] | select(. != $e)] | length')
[ "$wm_bad" = "0" ] || { echo "FAIL: $wm_bad shard watermarks differ from epoch $epoch at rest: $(echo "$epoch_doc" | jq -c .watermarks)"; exit 1; }
[ "$(echo "$epoch_doc" | jq -r .wal)" = "true" ] || { echo "FAIL: /epoch does not report wal"; exit 1; }

echo "--- /metrics scrape: core series present and non-zero after traffic"
metrics=$(curl -fsS "$BASE/metrics")
ctype=$(curl -fsSI "$BASE/metrics" | tr -d '\r' | awk -F': ' 'tolower($1)=="content-type" {print $2}')
case "$ctype" in
  "text/plain; version=0.0.4"*) ;;
  *) echo "FAIL: /metrics Content-Type is '$ctype'"; exit 1 ;;
esac
metric_nonzero() { # <sample regex> — assert the series exists with value > 0
  val=$(echo "$metrics" | awk -v pat="^$1 " '$0 ~ pat {print $2; exit}')
  if [ -z "$val" ] || [ "$(echo "$val" | awk '{print ($1 > 0) ? 1 : 0}')" != "1" ]; then
    echo "FAIL: metric $1 missing or zero (got '${val:-absent}')"; exit 1
  fi
  echo "  $1 = $val"
}
metric_nonzero 'tsens_serve_drain_rounds_total'
metric_nonzero 'tsens_serve_drain_round_seconds_count'
metric_nonzero 'tsens_serve_epoch'
metric_nonzero 'tsens_wal_fsyncs_total'
metric_nonzero 'tsens_wal_fsync_seconds_count'
metric_nonzero 'tsens_wal_records_total\{kind="updates"\}'
metric_nonzero 'tsens_serve_acks_total\{kind="updates"\}'
metric_nonzero 'tsens_epsilon_spent\{query="tri"\}'
metric_nonzero 'tsens_session_update_seconds_count'

echo "--- /debug/traces holds a finished update trace with a wal-append stage"
traces=$(curl -fsS "$BASE/debug/traces?name=update")
echo "$traces" | jq -c '{count, slow_threshold_ms}'
has_wal_stage=$(echo "$traces" | jq '[.traces[] | select(any(.stages[]?; .name == "wal-append"))] | length')
if [ "$has_wal_stage" = "0" ]; then
  echo "FAIL: no update trace with a wal-append stage after traffic"
  echo "$traces" | jq .
  exit 1
fi

echo "--- /debug/vars parses as JSON and agrees with /metrics on the epoch"
vars_epoch=$(curl -fsS "$BASE/debug/vars" | jq -r '."tsens_serve_epoch"')
prom_epoch=$(echo "$metrics" | awk '$1 == "tsens_serve_epoch" {print $2}')
[ "$vars_epoch" = "$prom_epoch" ] || { echo "FAIL: /debug/vars epoch $vars_epoch != /metrics $prom_epoch"; exit 1; }

echo "--- restart round-trip: SIGTERM, recover from WAL, state unchanged"
remaining_before=$(echo "$rel2" | jq -r .remaining)
kill -TERM "$server_pid"
wait "$server_pid" || { echo "FAIL: server exited non-zero on SIGTERM"; exit 1; }
server_pid=""
start_server

epoch2=$(curl -fsS "$BASE/epoch" | jq -r .epoch)
[ "$epoch2" = "$epoch" ] || { echo "FAIL: recovered epoch $epoch2 != pre-restart $epoch"; exit 1; }
durable=$(curl -fsS "$BASE/epoch" | jq -r .durable_epoch)
[ "$durable" = "$epoch" ] || { echo "FAIL: durable epoch $durable != $epoch after graceful shutdown"; exit 1; }

got2=$(curl -fsS "$BASE/queries/smoke/ls")
echo "$got2" | jq -c .
got2_count=$(echo "$got2" | jq -r .count)
got2_ls=$(echo "$got2" | jq -r .ls)
if [ "$got2_count" != "$want_count" ] || [ "$got2_ls" != "$want_ls" ]; then
  echo "FAIL: recovered (count=$got2_count, ls=$got2_ls), want (count=$want_count, ls=$want_ls)"
  exit 1
fi

rel3=$(curl -fsS -X POST "$BASE/queries/tri/release")
echo "$rel3" | jq -c .
[ "$(echo "$rel3" | jq -r .fresh)" = "false" ] || { echo "FAIL: post-restart release re-spent budget (amnesia)"; exit 1; }
[ "$(echo "$rel3" | jq -r .noisy)" = "$(echo "$rel2" | jq -r .noisy)" ] || { echo "FAIL: replayed noisy value changed across restart"; exit 1; }
remaining_after=$(echo "$rel3" | jq -r .remaining)
[ "$remaining_after" = "$remaining_before" ] || { echo "FAIL: remaining ε $remaining_after != $remaining_before across restart"; exit 1; }

echo "serve smoke OK: count=$got_count ls=$got_ls (restart verified: epoch=$epoch2, remaining ε=$remaining_after)"
