# poll.sh — bounded retry with exponential backoff and jitter, shared by the
# smoke scripts. Fixed `sleep 0.1` loops either waste wall-clock on fast
# machines or flake on slow ones; this helper retries a command until it
# succeeds, doubling the delay from 50ms up to 800ms with full jitter (so
# several pollers — e.g. a leader and a follower starting together — do not
# hammer in lockstep), and fails loudly at a hard deadline.
#
# Usage: poll_until <timeout_seconds> <description> <command...>
# Returns 0 the first time <command...> succeeds; prints a FAIL line and
# returns 1 once timeout_seconds have elapsed without a success.
poll_until() {
  local timeout=$1 what=$2
  shift 2
  local deadline=$((($(date +%s%N) / 1000000) + timeout * 1000))
  local delay_ms=50
  while true; do
    if "$@" >/dev/null 2>&1; then
      return 0
    fi
    local now=$(($(date +%s%N) / 1000000))
    if ((now >= deadline)); then
      echo "FAIL: timed out after ${timeout}s waiting for $what" >&2
      return 1
    fi
    # Full jitter in [delay/2, delay], never sleeping past the deadline.
    local jit=$((delay_ms / 2 + RANDOM % (delay_ms / 2 + 1)))
    if ((now + jit > deadline)); then
      jit=$((deadline - now))
    fi
    sleep "$(awk "BEGIN{printf \"%.3f\", $jit/1000}")"
    if ((delay_ms < 800)); then
      delay_ms=$((delay_ms * 2))
    fi
  done
}
